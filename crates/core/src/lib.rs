//! The paper's primary contribution as a library: **differential
//! convolution** and the **Diffy** accelerator evaluation stack.
//!
//! * [`dc`] — differential convolution (Eqs. 3/4): computing each output
//!   from its left neighbour plus an inner product with the window
//!   *deltas*, with an exactness guarantee against direct convolution.
//! * [`accelerator`] — the end-to-end evaluation of one network trace on
//!   one architecture: cycle model + storage scheme + off-chip memory →
//!   execution time, stalls, traffic, FPS.
//! * [`runner`] — workload orchestration: datasets → prepared inputs →
//!   traces (with weight caching), plus the resolution-scaling rules for
//!   HD projections (DESIGN.md §2.3).
//! * [`scaling`] — the Fig. 17/18 studies: FPS across resolutions and the
//!   minimum tiles × memory-node search for real-time HD.
//! * [`experiment`] — the registry mapping every table and figure of the
//!   paper to its bench target.
//! * [`artifact`] — the disk tier of the sweep cache: validated,
//!   atomically-written artifact files that let `diffy precompute` and
//!   `diffy serve --artifact-dir` turn evaluation into lookup.
//! * [`json`] — the hand-rolled JSON document model: the deterministic
//!   emitter behind the committed `BENCH_*.json` files and the strict
//!   parser the evaluation service reads requests with.
//! * [`parallel`] — the deterministic sweep engine: a std-only
//!   scoped-thread job pool with order-stable results and a compute-once
//!   keyed cache for weights and traces.
//! * [`summary`] — fixed-width table formatting shared by the bench
//!   harness.
//! * [`trace`] — span tracing across the evaluation pipeline: per-stage
//!   timing with Chrome trace-event export (`--trace-out`, `GET /trace`).
//!
//! # Quickstart
//!
//! ```
//! use diffy_core::dc::differential_conv2d;
//! use diffy_tensor::{conv2d, ConvGeometry, Tensor3, Tensor4};
//!
//! let imap = Tensor3::from_vec(1, 2, 4, vec![3i16, 4, 4, 5, 9, 9, 8, 7]);
//! let fmaps = Tensor4::from_vec(1, 1, 2, 2, vec![1i16, -1, 2, 1]);
//! let direct = conv2d(&imap, &fmaps, None, ConvGeometry::unit());
//! let differential = differential_conv2d(&imap, &fmaps, None, ConvGeometry::unit());
//! assert_eq!(direct, differential); // bit-exact, by construction
//! ```


#![warn(missing_docs)]

pub mod accelerator;
pub mod artifact;
pub mod datapath;
pub mod dc;
pub mod experiment;
pub mod json;
pub mod parallel;
pub mod reporting;
pub mod runner;
pub mod scaling;
pub mod summary;
pub mod system;
pub mod tile;
pub mod trace;

pub use accelerator::{
    evaluate_network, evaluate_network_batch, evaluate_network_with_artifacts,
    evaluate_network_with_terms, network_scheme_traffic, EvalOptions, NetworkResult,
    SchemeChoice, TermPlaneSource, TrafficSource,
};
pub use artifact::{
    decode_artifact, result_key, ArtifactError, DiskStats, DiskTier, EvalArtifact,
};
pub use diffy_imaging::datasets::DatasetId;
pub use diffy_models::CiModel;
pub use dc::differential_conv2d;
pub use json::{bench_json_string, json_escape, json_number, BenchRecord, JsonValue};
pub use parallel::{run_jobs, BoundedCache, Jobs, KeyedCache};
pub use runner::{
    ci_trace_bundle, class_trace_bundle, ci_trace_bundles_par, sweep_par, video_frame_bundle,
    CacheStats, SweepCache, SweepJob, TraceBundle, TraceKey, VideoSpec, WorkloadOptions,
};
