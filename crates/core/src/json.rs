//! Hand-rolled JSON: the emitter shared by the bench harness and the
//! evaluation service, plus the small recursive-descent parser the
//! service needs to read requests.
//!
//! The workspace is fully offline (DESIGN.md §6), so instead of serde the
//! repo carries the JSON subset it actually uses:
//!
//! * [`JsonValue`] — an ordered document model. Objects preserve
//!   insertion order so serialization is deterministic: the same value
//!   always renders to the same bytes, which is what lets the service
//!   promise bit-identical responses and the tests compare strings.
//! * [`parse`] — a strict recursive-descent parser for that model.
//!   Integral literals stay integers ([`JsonValue::Int`], `i128`), so
//!   `u64` cycle counts round-trip exactly instead of passing through an
//!   `f64`.
//! * [`json_escape`] / [`json_number`] — the string/number rendering
//!   rules, also used directly by the bench emitter.
//! * [`BenchRecord`] / [`bench_json_string`] — the committed
//!   `BENCH_*.json` document format (moved here from `diffy-bench`,
//!   which re-exports them).

use std::fmt;

/// A parsed or constructed JSON document.
///
/// Object member order is preserved (a `Vec` of pairs, not a map): the
/// serializer emits members in insertion order, so building the same
/// value twice yields byte-identical text.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number literal (no `.` or exponent). `i128` covers the
    /// full `u64`/`i64` range exactly.
    Int(i128),
    /// A number literal with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (floats directly, integers converted).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object(members: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes compactly (no whitespace). Deterministic: equal values
    /// produce equal strings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(f) => out.push_str(&json_number(*f)),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// A parse failure: what went wrong and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting depth cap: requests are shallow; a recursion bomb is a 400,
/// not a stack overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00`-`\uDFFF`.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let ch = s.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = &self.bytes[self.pos..end];
        // Exactly four ASCII hex digits. `u32::from_str_radix` alone is
        // too lenient — it accepts a leading `+`, so `\u+041` would have
        // decoded as `A`.
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("bad \\u escape digits"));
        }
        let hex = std::str::from_utf8(digits).expect("hex digits are ASCII");
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape digits"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        let int_digits = self.digit_run()?;
        if int_digits > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digit_run()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digit_run()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Int(i));
            }
            // Out-of-range integral literal: fall back to float.
        }
        // Rust's f64 parser saturates to ±inf past ~1.8e308, but inf has
        // no JSON representation — accepting `1e999` here would produce a
        // value the emitter can only panic on. Grammar-valid but
        // unrepresentable is still a parse error.
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(JsonValue::Float(f)),
            Ok(_) => Err(self.err("number out of representable range")),
            Err(_) => Err(self.err("bad number")),
        }
    }

    fn digit_run(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

/// Escapes a string for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` as a JSON number.
///
/// Rust's shortest-roundtrip float formatting is valid JSON for any
/// finite value (always digits, optional `.`, optional `e` exponent);
/// integral values gain a `.0` so they read back as floats.
///
/// # Panics
///
/// Panics on NaN or infinity — those have no JSON representation.
pub fn json_number(v: f64) -> String {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    let s = format!("{v}");
    if s.contains(['.', 'e']) { s } else { format!("{s}.0") }
}

/// One wall-time measurement destined for [`bench_json_string`].
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Kernel or scenario name.
    pub name: String,
    /// Mean wall time per iteration, in milliseconds.
    pub wall_ms: f64,
    /// Iterations folded into the mean (after one unmeasured warmup).
    pub iters: u64,
    /// Work units (windows, jobs, …) processed per second, when the
    /// scenario has a natural unit.
    pub per_second: Option<f64>,
}

/// Renders the committed `BENCH_*.json` document: a bench label,
/// free-form string metadata, the measured records, and top-level
/// numeric summary fields (e.g. the headline speedup).
pub fn bench_json_string(
    bench: &str,
    meta: &[(&str, String)],
    records: &[BenchRecord],
    summary: &[(&str, f64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    out.push_str("  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": \"{}\"", json_escape(k), json_escape(v)));
    }
    out.push_str(if meta.is_empty() { "},\n" } else { "\n  },\n" });
    out.push_str("  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"wall_ms_per_iter\": {}, \"iters\": {}",
            json_escape(&r.name),
            json_number(r.wall_ms),
            r.iters
        ));
        if let Some(ps) = r.per_second {
            out.push_str(&format!(", \"per_second\": {}", json_number(ps)));
        }
        out.push('}');
    }
    out.push_str(if records.is_empty() { "]" } else { "\n  ]" });
    for (k, v) in summary {
        out.push_str(&format!(",\n  \"{}\": {}", json_escape(k), json_number(*v)));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("0").unwrap(), JsonValue::Int(0));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), JsonValue::Float(2000.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn u64_cycle_counts_round_trip_exactly() {
        // Above 2^53: would be lossy through f64, must stay integral.
        let v = u64::MAX - 3;
        let doc = JsonValue::from(v).to_json();
        assert_eq!(parse(&doc).unwrap().as_u64(), Some(v));
    }

    #[test]
    fn parses_structures_preserving_order() {
        let v = parse(r#"{"b": [1, 2.5, "x"], "a": {"k": null}}"#).unwrap();
        let JsonValue::Object(members) = &v else { panic!("not an object") };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap()[2],
            JsonValue::Str("x".into())
        );
        assert_eq!(v.get("a").unwrap().get("k"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}é\u{10348}";
        let doc = JsonValue::Str(original.to_string()).to_json();
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair.
        let v = parse(r#""\u0041\ud800\udf48\/""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{10348}/"));
    }

    #[test]
    fn serialization_is_deterministic() {
        let build = || {
            JsonValue::object(vec![
                ("n", JsonValue::from(3u64)),
                ("f", JsonValue::from(0.25)),
                ("s", JsonValue::from("x")),
                ("a", JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)])),
            ])
        };
        assert_eq!(build().to_json(), build().to_json());
        assert_eq!(
            build().to_json(),
            r#"{"n":3,"f":0.25,"s":"x","a":[null,true]}"#
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "01", "1.", "\"\\x\"", "\"unterminated",
            "{1: 2}", "[1] garbage", "nan", "--1", "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_recursion_bombs() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn nesting_bound_is_exact() {
        // The depth check runs on entry to `value`, and an *empty* inner
        // array returns without recursing, so MAX_DEPTH + 1 brackets is
        // the last shape that parses; one more is an error, never an
        // overflow.
        let ok = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&ok).is_ok(), "bracket depth {} must parse", MAX_DEPTH + 1);
        let over = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = parse(&over).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // Objects count against the same budget, and a non-empty leaf
        // recurses once more than an empty one.
        let deep_obj = "{\"k\":".repeat(MAX_DEPTH + 1) + "null" + &"}".repeat(MAX_DEPTH + 1);
        assert!(parse(&deep_obj).is_err());
        let ok_obj = "{\"k\":".repeat(MAX_DEPTH) + "null" + &"}".repeat(MAX_DEPTH);
        assert!(parse(&ok_obj).is_ok());
    }

    #[test]
    fn fuzz_regression_overflowing_numbers_do_not_parse_to_infinity() {
        // Found by the JSON byte fuzzer: `1e999` passed the grammar, f64
        // parsing saturated it to +inf, and the re-emit leg of the
        // differential property panicked inside `json_number` (inf has no
        // JSON form). The same hole existed for integral literals wide
        // enough to overflow both i128 and f64.
        for doc in ["1e999", "-1e999", "1e308999", &format!("1{}", "0".repeat(400))] {
            let e = parse(doc).unwrap_err();
            assert!(e.message.contains("range"), "{doc}: {e}");
        }
        // Near the edge both ways: f64::MAX round-trips, just past it
        // does not.
        assert!(parse("1.7976931348623157e308").is_ok());
        assert!(parse("1.8e308").is_err());
        // Integral overflow of i128 that still fits f64 stays accepted
        // as an (inexact) float, as before.
        assert_eq!(
            parse("340282366920938463463374607431768211456").unwrap(), // 2^128
            JsonValue::Float(2f64.powi(128))
        );
    }

    #[test]
    fn fuzz_regression_unicode_escape_digits_are_strict() {
        // Found by the JSON byte fuzzer: `u32::from_str_radix` accepts a
        // leading `+`, so `\u+041` decoded to `A` instead of erroring.
        for doc in [r#""\u+041""#, r#""\u 041""#, r#""\u00g1""#, r#""\u-041""#] {
            let e = parse(doc).unwrap_err();
            assert!(e.message.contains("escape"), "{doc}: {e}");
        }
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn duplicate_keys_are_preserved_and_get_returns_the_first() {
        // The document model is an ordered member list, not a map: a
        // duplicate key neither errors nor overwrites, and lookups see
        // the first occurrence. Pinned so serve-layer semantics (last
        // writer does NOT win) cannot drift silently.
        let v = parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap();
        assert_eq!(v.get("a"), Some(&JsonValue::Int(1)));
        let JsonValue::Object(members) = &v else { panic!("not an object") };
        assert_eq!(members.len(), 3);
        assert_eq!(members[2], ("a".to_string(), JsonValue::Int(3)));
        // And the round trip preserves both occurrences bytewise.
        assert_eq!(v.to_json(), r#"{"a":1,"b":2,"a":3}"#);
    }

    #[test]
    fn surrogate_error_paths_are_rejected() {
        let cases = [
            (r#""\ud800""#, "lone high surrogate"),
            (r#""\ud800x""#, "high surrogate then literal"),
            (r#""\ud800\u0041""#, "high surrogate then non-surrogate"),
            (r#""\udc00""#, "lone low surrogate"),
            (r#""\ud800\ud800""#, "high surrogate twice"),
            (r#""\ud800\u""#, "high surrogate then truncated escape"),
            (r#""\u00""#, "truncated escape at end of string"),
        ];
        for (doc, why) in cases {
            assert!(parse(doc).is_err(), "{why}: {doc}");
        }
        // The full pair still decodes.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn number_edge_cases() {
        // i128 bounds are exact in both directions.
        let max = i128::MAX.to_string();
        let min = i128::MIN.to_string();
        assert_eq!(parse(&max).unwrap(), JsonValue::Int(i128::MAX));
        assert_eq!(parse(&min).unwrap(), JsonValue::Int(i128::MIN));
        assert_eq!(parse(&max).unwrap().to_json(), max);
        assert_eq!(parse(&min).unwrap().to_json(), min);
        // -0 is integral zero (JSON allows the sign; i128 has no -0).
        assert_eq!(parse("-0").unwrap(), JsonValue::Int(0));
        // -0.0 keeps its sign bit as a float but compares equal to 0.0.
        assert_eq!(parse("-0.0").unwrap(), JsonValue::Float(0.0));
        // Leading zeros are malformed everywhere a digit run starts…
        for doc in ["01", "-01", "00", "[01]", r#"{"a": 007}"#] {
            assert!(parse(doc).is_err(), "{doc}");
        }
        // …but a lone 0 and 0-prefixed fractions/exponents are fine.
        for doc in ["0", "-0", "0.5", "0e0", "1e07", "0.00", "2E+3", "2e-3"] {
            assert!(parse(doc).is_ok(), "{doc}");
        }
        // Incomplete number shapes.
        for doc in ["-", "1.", ".5", "1e", "1e+", "+1", "1_000", "0x10", "Infinity", "NaN"] {
            assert!(parse(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn error_offsets_stay_within_the_input() {
        for doc in ["", "[1,", "{\"a\":", "tru", "1e999", "\"\\u+041\"", "[1]x"] {
            let e = parse(doc).unwrap_err();
            assert!(e.offset <= doc.len(), "{doc}: offset {} > len {}", e.offset, doc.len());
        }
    }

    #[test]
    fn value_round_trips_through_text() {
        let v = JsonValue::object(vec![
            ("i", JsonValue::Int(-12)),
            ("u", JsonValue::from(9_007_199_254_740_993u64)), // 2^53 + 1
            ("f", JsonValue::Float(0.1)),
            ("s", JsonValue::from("q\"uote")),
            ("arr", JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Null])),
            ("obj", JsonValue::object(vec![("nested", JsonValue::Bool(false))])),
        ]);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn bench_document_parses_and_round_trips() {
        let records = vec![
            BenchRecord {
                name: "ref".into(),
                wall_ms: 1200.5,
                iters: 3,
                per_second: Some(2.0e6),
            },
            BenchRecord { name: "opt".into(), wall_ms: 80.0, iters: 10, per_second: None },
        ];
        let doc = bench_json_string(
            "term_serial",
            &[("resolution", "16x1080x1920".to_string())],
            &records,
            &[("speedup_hd", 15.0)],
        );
        let v = parse(&doc).expect("emitter output must parse");
        assert_eq!(v.get("bench").unwrap().as_str(), Some("term_serial"));
        assert_eq!(
            v.get("meta").unwrap().get("resolution").unwrap().as_str(),
            Some("16x1080x1920")
        );
        let recs = v.get("records").unwrap().as_array().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("wall_ms_per_iter").unwrap().as_f64(), Some(1200.5));
        assert_eq!(recs[0].get("iters").unwrap().as_u64(), Some(3));
        assert_eq!(recs[0].get("per_second").unwrap().as_f64(), Some(2.0e6));
        assert_eq!(recs[1].get("per_second"), None);
        assert_eq!(v.get("speedup_hd").unwrap().as_f64(), Some(15.0));
    }

    #[test]
    fn empty_bench_document_parses() {
        let doc = bench_json_string("empty", &[], &[], &[]);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("records").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(v.get("meta").unwrap(), &JsonValue::Object(vec![]));
    }
}
