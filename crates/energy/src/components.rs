//! Per-component power and area breakdowns.
//!
//! Constants are calibrated at the Table IV default (4 tiles, 1 GHz,
//! TSMC 65 nm): they reproduce the paper's Table VI/VII component rows
//! and, with the measured speedups, its normalized power (~3.9× for
//! Diffy, ~3.7× for PRA over VAA) and energy-efficiency results. Compute
//! logic, buffers, dispatcher, offset generators and Delta_out scale
//! linearly with tile count; AM and WM scale linearly with provisioned
//! capacity.

use diffy_sim::{AcceleratorConfig, Architecture};

/// Reference AM capacity the constants are calibrated at (1 MB).
pub const REF_AM_BYTES: u64 = 1 << 20;
/// Reference WM capacity the constants are calibrated at (512 KB).
pub const REF_WM_BYTES: u64 = 512 << 10;
/// Reference tile count of the Table IV configuration.
pub const REF_TILES: f64 = 4.0;

/// A per-component quantity (power in W, or area in mm²).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Compute cores (IP/SIP arrays; includes Diffy's DR engines).
    pub compute: f64,
    /// Activation memory.
    pub am: f64,
    /// Weight memory.
    pub wm: f64,
    /// Per-tile input/output activation buffers (ABin + ABout).
    pub abuf: f64,
    /// The dispatcher feeding activation bricks.
    pub dispatcher: f64,
    /// Offset generators (term-serial designs only).
    pub offset_gens: f64,
    /// The Delta_out engine (Diffy only).
    pub delta_out: f64,
}

impl Breakdown {
    /// Sum over all components.
    pub fn total(&self) -> f64 {
        self.compute
            + self.am
            + self.wm
            + self.abuf
            + self.dispatcher
            + self.offset_gens
            + self.delta_out
    }

    /// Component rows as `(label, value)` pairs, in Table VI/VII order.
    pub fn rows(&self) -> [(&'static str, f64); 7] {
        [
            ("Compute", self.compute),
            ("AM", self.am),
            ("WM", self.wm),
            ("ABin+ABout", self.abuf),
            ("Dispatcher", self.dispatcher),
            ("Offset Gens.", self.offset_gens),
            ("Delta_out", self.delta_out),
        ]
    }
}

/// Calibration constants for one architecture at the reference
/// configuration.
struct Calibration {
    compute_w: f64,
    am_w: f64, // at REF_AM_BYTES
    wm_w: f64, // at REF_WM_BYTES
    abuf_w: f64,
    dispatcher_w: f64,
    offset_w: f64,
    delta_w: f64,
    compute_mm2: f64,
    am_mm2: f64,
    wm_mm2: f64,
    abuf_mm2: f64,
    dispatcher_mm2: f64,
    offset_mm2: f64,
    delta_mm2: f64,
}

fn calibration(arch: Architecture) -> Calibration {
    match arch {
        Architecture::Vaa => Calibration {
            compute_w: 2.42,
            am_w: 0.60,
            wm_w: 0.22,
            abuf_w: 0.10,
            dispatcher_w: 0.15,
            offset_w: 0.0,
            delta_w: 0.0,
            compute_mm2: 14.50,
            am_mm2: 6.05,
            wm_mm2: 2.10,
            abuf_mm2: 0.23,
            dispatcher_mm2: 0.37,
            offset_mm2: 0.0,
            delta_mm2: 0.0,
        },
        Architecture::Pra => Calibration {
            compute_w: 11.69,
            am_w: 1.36,
            wm_w: 0.27,
            abuf_w: 0.15,
            dispatcher_w: 0.25,
            offset_w: 0.21,
            delta_w: 0.0,
            compute_mm2: 20.70,
            am_mm2: 6.05,
            wm_mm2: 2.10,
            abuf_mm2: 0.77,
            dispatcher_mm2: 1.28,
            offset_mm2: 1.00,
            delta_mm2: 0.0,
        },
        Architecture::Diffy => Calibration {
            compute_w: 11.75,
            am_w: 1.36, // scaled down by the smaller AM below
            wm_w: 0.37,
            abuf_w: 0.15,
            dispatcher_w: 0.25,
            offset_w: 0.21,
            delta_w: 0.03,
            compute_mm2: 21.50,
            am_mm2: 6.05,
            wm_mm2: 2.10,
            abuf_mm2: 0.77,
            dispatcher_mm2: 1.28,
            offset_mm2: 1.00,
            delta_mm2: 0.09,
        },
        Architecture::Scnn => {
            // The paper gives no SCNN layout; use PRA-class constants so
            // comparisons stay sane if requested.
            calibration(Architecture::Pra)
        }
    }
}

/// Power breakdown (W) for an architecture at a configuration and
/// provisioned AM/WM capacities.
pub fn power_breakdown(
    arch: Architecture,
    cfg: &AcceleratorConfig,
    am_bytes: u64,
    wm_bytes: u64,
) -> Breakdown {
    let cal = calibration(arch);
    let t = cfg.tiles as f64 / REF_TILES;
    let am_scale = am_bytes as f64 / REF_AM_BYTES as f64;
    let wm_scale = wm_bytes as f64 / REF_WM_BYTES as f64;
    Breakdown {
        compute: cal.compute_w * t,
        am: cal.am_w * am_scale,
        wm: cal.wm_w * wm_scale,
        abuf: cal.abuf_w * t,
        dispatcher: cal.dispatcher_w * t,
        offset_gens: cal.offset_w * t,
        delta_out: cal.delta_w * t,
    }
}

/// Area breakdown (mm²), same scaling rules as [`power_breakdown`].
pub fn area_breakdown(
    arch: Architecture,
    cfg: &AcceleratorConfig,
    am_bytes: u64,
    wm_bytes: u64,
) -> Breakdown {
    let cal = calibration(arch);
    let t = cfg.tiles as f64 / REF_TILES;
    let am_scale = am_bytes as f64 / REF_AM_BYTES as f64;
    let wm_scale = wm_bytes as f64 / REF_WM_BYTES as f64;
    Breakdown {
        compute: cal.compute_mm2 * t,
        am: cal.am_mm2 * am_scale,
        wm: cal.wm_mm2 * wm_scale,
        abuf: cal.abuf_mm2 * t,
        dispatcher: cal.dispatcher_mm2 * t,
        offset_gens: cal.offset_mm2 * t,
        delta_out: cal.delta_mm2 * t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::table4()
    }

    #[test]
    fn vaa_reference_power_is_about_three_and_a_half_watts() {
        let p = power_breakdown(Architecture::Vaa, &cfg(), REF_AM_BYTES, REF_WM_BYTES);
        assert!((3.2..3.8).contains(&p.total()), "VAA total {}", p.total());
    }

    #[test]
    fn normalized_power_matches_paper_shape() {
        let vaa = power_breakdown(Architecture::Vaa, &cfg(), REF_AM_BYTES, REF_WM_BYTES).total();
        let pra = power_breakdown(Architecture::Pra, &cfg(), REF_AM_BYTES, REF_WM_BYTES).total();
        // Diffy with the DeltaD16 AM (512 KB).
        let diffy =
            power_breakdown(Architecture::Diffy, &cfg(), 512 << 10, REF_WM_BYTES).total();
        let pra_ratio = pra / vaa;
        let diffy_ratio = diffy / vaa;
        assert!((3.3..4.3).contains(&pra_ratio), "PRA ratio {pra_ratio}");
        assert!((3.3..4.3).contains(&diffy_ratio), "Diffy ratio {diffy_ratio}");
    }

    #[test]
    fn area_ordering_matches_table7() {
        let am_1mb = REF_AM_BYTES;
        let vaa = area_breakdown(Architecture::Vaa, &cfg(), am_1mb, REF_WM_BYTES).total();
        let pra = area_breakdown(Architecture::Pra, &cfg(), am_1mb, REF_WM_BYTES).total();
        let diffy = area_breakdown(Architecture::Diffy, &cfg(), 512 << 10, REF_WM_BYTES).total();
        // VAA < Diffy < PRA: Diffy's halved AM more than pays for the DR
        // engines and Delta_out.
        assert!(vaa < diffy, "vaa {vaa} diffy {diffy}");
        assert!(diffy < pra, "diffy {diffy} pra {pra}");
        // Normalized overheads in the paper's range (1.24x / 1.33x).
        assert!((1.1..1.45).contains(&(diffy / vaa)));
        assert!((1.2..1.55).contains(&(pra / vaa)));
    }

    #[test]
    fn components_scale_with_tiles() {
        let p4 = power_breakdown(Architecture::Diffy, &cfg(), REF_AM_BYTES, REF_WM_BYTES);
        let p8 = power_breakdown(
            Architecture::Diffy,
            &cfg().with_tiles(8),
            REF_AM_BYTES,
            REF_WM_BYTES,
        );
        assert!((p8.compute / p4.compute - 2.0).abs() < 1e-9);
        assert!((p8.am - p4.am).abs() < 1e-9, "AM scales with capacity, not tiles");
    }

    #[test]
    fn sram_components_scale_with_capacity() {
        let a1 = area_breakdown(Architecture::Pra, &cfg(), REF_AM_BYTES, REF_WM_BYTES);
        let a2 = area_breakdown(Architecture::Pra, &cfg(), REF_AM_BYTES / 2, REF_WM_BYTES * 2);
        assert!((a2.am * 2.0 - a1.am).abs() < 1e-9);
        assert!((a2.wm - a1.wm * 2.0).abs() < 1e-9);
    }

    #[test]
    fn only_diffy_pays_for_delta_out() {
        let d = power_breakdown(Architecture::Diffy, &cfg(), REF_AM_BYTES, REF_WM_BYTES);
        let p = power_breakdown(Architecture::Pra, &cfg(), REF_AM_BYTES, REF_WM_BYTES);
        let v = power_breakdown(Architecture::Vaa, &cfg(), REF_AM_BYTES, REF_WM_BYTES);
        assert!(d.delta_out > 0.0);
        assert_eq!(p.delta_out, 0.0);
        assert_eq!(v.delta_out, 0.0);
        assert_eq!(v.offset_gens, 0.0);
    }

    #[test]
    fn rows_cover_every_component() {
        let d = power_breakdown(Architecture::Diffy, &cfg(), REF_AM_BYTES, REF_WM_BYTES);
        let sum: f64 = d.rows().iter().map(|(_, v)| v).sum();
        assert!((sum - d.total()).abs() < 1e-12);
    }
}
