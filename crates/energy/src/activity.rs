//! Event-level energy accounting.
//!
//! The power model in [`crate::components`] reproduces the paper's
//! average-power table; this module complements it with bottom-up
//! activity energy — per-event costs multiplied by the activity counts
//! the simulators report — which is what exposes *where* Diffy's energy
//! advantage comes from: fewer effectual shift-add events and fewer
//! bytes moved at every level of the hierarchy.
//!
//! Per-event constants are 65 nm-class figures from the accelerator
//! literature (a full 16×16 MAC ≈ 3 pJ; a shift-add term ≈ an eighth of
//! that; large-SRAM and DRAM per-byte costs as in
//! [`crate::efficiency`]).

use crate::efficiency::{DRAM_PJ_PER_BYTE, SRAM_PJ_PER_BYTE};

/// Energy of one full 16×16-bit multiply-accumulate (VAA's event), pJ.
pub const MAC_PJ: f64 = 3.1;

/// Energy of one shift-add of a single effectual term (PRA/Diffy's
/// event), pJ. A term touches a shifter and an adder, roughly an eighth
/// of a full multiplier's switching.
pub const TERM_PJ: f64 = 0.42;

/// Energy of one DR reconstruction add (Diffy only), pJ.
pub const DR_ADD_PJ: f64 = 0.18;

/// Energy of one Delta_out subtract (Diffy only), pJ.
pub const DELTA_OUT_PJ: f64 = 0.12;

/// Bottom-up activity energy of one network execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityEnergy {
    /// Datapath energy (MACs or term shift-adds + DR/Delta_out), J.
    pub compute_j: f64,
    /// On-chip SRAM movement (AM reads/writes), J.
    pub sram_j: f64,
    /// Off-chip DRAM movement, J.
    pub dram_j: f64,
}

impl ActivityEnergy {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.sram_j + self.dram_j
    }
}

/// Activity counts of one network execution, as the simulators report
/// them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Full MACs executed (VAA) — zero for the term-serial designs.
    pub macs: u64,
    /// Effectual term shift-adds (PRA/Diffy `compute_events`).
    pub term_ops: u64,
    /// DR reconstruction adds (one per differential output).
    pub dr_adds: u64,
    /// Delta_out subtracts (one per omap value).
    pub delta_out_ops: u64,
    /// Bytes moved through the AM (reads + writes).
    pub sram_bytes: u64,
    /// Bytes moved off-chip.
    pub dram_bytes: u64,
}

/// Converts activity counts into energy.
pub fn activity_energy(counts: &ActivityCounts) -> ActivityEnergy {
    let compute_pj = counts.macs as f64 * MAC_PJ
        + counts.term_ops as f64 * TERM_PJ
        + counts.dr_adds as f64 * DR_ADD_PJ
        + counts.delta_out_ops as f64 * DELTA_OUT_PJ;
    ActivityEnergy {
        compute_j: compute_pj * 1e-12,
        sram_j: counts.sram_bytes as f64 * SRAM_PJ_PER_BYTE * 1e-12,
        dram_j: counts.dram_bytes as f64 * DRAM_PJ_PER_BYTE * 1e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let e = activity_energy(&ActivityCounts {
            macs: 1_000_000,
            term_ops: 0,
            dr_adds: 0,
            delta_out_ops: 0,
            sram_bytes: 1_000_000,
            dram_bytes: 1_000_000,
        });
        assert!((e.compute_j - 3.1e-6).abs() < 1e-12);
        assert!((e.sram_j - 1.5e-6).abs() < 1e-12);
        assert!((e.dram_j - 150e-6).abs() < 1e-12);
        assert!((e.total_j() - (e.compute_j + e.sram_j + e.dram_j)).abs() < 1e-18);
    }

    #[test]
    fn term_serial_compute_beats_macs_when_terms_are_few() {
        // The arithmetic of the paper's premise: N MACs at 16 bits vs
        // N x mean_terms shift-adds. Below ~7 terms/value the term-serial
        // datapath spends less compute energy.
        let n = 1_000_000u64;
        let mac = activity_energy(&ActivityCounts { macs: n, ..Default::default() });
        let few_terms = activity_energy(&ActivityCounts {
            term_ops: n * 3, // 3 terms/value
            ..Default::default()
        });
        let many_terms = activity_energy(&ActivityCounts {
            term_ops: n * 8,
            ..Default::default()
        });
        assert!(few_terms.compute_j < mac.compute_j);
        assert!(many_terms.compute_j > mac.compute_j);
    }

    #[test]
    fn dr_and_delta_out_overheads_are_second_order() {
        // One DR add + one Delta_out op per output costs far less than
        // the per-output inner product it enables savings on.
        let outputs = 1_000u64;
        let overhead = activity_energy(&ActivityCounts {
            dr_adds: outputs,
            delta_out_ops: outputs,
            ..Default::default()
        });
        let inner_products = activity_energy(&ActivityCounts {
            term_ops: outputs * 64 * 9, // 64-ch 3x3 window at 1 term/value
            ..Default::default()
        });
        assert!(overhead.total_j() < inner_products.total_j() / 100.0);
    }

    #[test]
    fn dram_dominates_equal_byte_counts() {
        let counts = ActivityCounts { sram_bytes: 1 << 20, dram_bytes: 1 << 20, ..Default::default() };
        let e = activity_energy(&counts);
        assert!(e.dram_j > e.sram_j * 90.0);
    }
}
