//! Energy and relative energy efficiency.
//!
//! The paper's Table VI derives energy efficiency as
//! `(speedup) / (power ratio)` — an architecture that is 7.1× faster at
//! 3.9× the power is 1.83× more energy efficient. The off-chip model adds
//! the DRAM energy the table deliberately excludes ("these measurements
//! ignore the off-chip traffic reduction achieved by Diffy").

/// DRAM access energy per byte, 65 nm-era DDR interface (~150 pJ/byte
/// including I/O) — roughly two orders of magnitude above on-chip SRAM,
/// as the paper asserts.
pub const DRAM_PJ_PER_BYTE: f64 = 150.0;

/// Large on-chip SRAM access energy per byte (~1.5 pJ/byte at 65 nm for
/// megabyte-class arrays).
pub const SRAM_PJ_PER_BYTE: f64 = 1.5;

/// Energy in joules of running at `power_w` for `cycles` at
/// `frequency_ghz`.
pub fn energy_joules(power_w: f64, cycles: u64, frequency_ghz: f64) -> f64 {
    power_w * cycles as f64 / (frequency_ghz * 1e9)
}

/// Off-chip transfer energy in joules.
pub fn offchip_energy_joules(bytes: u64) -> f64 {
    bytes as f64 * DRAM_PJ_PER_BYTE * 1e-12
}

/// On-chip SRAM transfer energy in joules.
pub fn onchip_energy_joules(bytes: u64) -> f64 {
    bytes as f64 * SRAM_PJ_PER_BYTE * 1e-12
}

/// Energy efficiency of an architecture relative to a baseline:
/// `E_base / E_arch` for the same work.
///
/// # Panics
///
/// Panics if either energy is non-positive.
pub fn relative_efficiency(base_energy_j: f64, arch_energy_j: f64) -> f64 {
    assert!(base_energy_j > 0.0 && arch_energy_j > 0.0, "energies must be positive");
    base_energy_j / arch_energy_j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        // 5 W for 1e9 cycles at 1 GHz = 5 J.
        assert!((energy_joules(5.0, 1_000_000_000, 1.0) - 5.0).abs() < 1e-12);
        // Double frequency halves time.
        assert!((energy_joules(5.0, 1_000_000_000, 2.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn dram_is_two_orders_of_magnitude_above_sram() {
        let ratio = DRAM_PJ_PER_BYTE / SRAM_PJ_PER_BYTE;
        assert!(ratio >= 100.0, "ratio {ratio}");
        assert!(offchip_energy_joules(1000) > onchip_energy_joules(1000) * 99.0);
    }

    #[test]
    fn paper_table6_arithmetic_reproduces() {
        // Diffy: 7.1x speedup at 3.88x power -> 1.83x efficiency.
        let vaa_cycles = 7_100u64;
        let diffy_cycles = 1_000u64;
        let e_vaa = energy_joules(3.5, vaa_cycles, 1.0);
        let e_diffy = energy_joules(3.5 * 3.88, diffy_cycles, 1.0);
        let eff = relative_efficiency(e_vaa, e_diffy);
        assert!((eff - 1.83).abs() < 0.02, "efficiency {eff}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_energy() {
        let _ = relative_efficiency(0.0, 1.0);
    }
}
