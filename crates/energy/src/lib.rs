//! Analytical power and area models (Tables VI and VII).
//!
//! The paper obtains power and area from Verilog synthesis (Synopsys DC),
//! layout (Cadence Innovus, TSMC 65 nm) and CACTI for the SRAMs. None of
//! that flow is available here, so this crate substitutes a calibrated
//! analytical model (DESIGN.md §2.4): per-component constants chosen to
//! match the paper's published per-component breakdowns at the default
//! Table IV configuration, with first-order scaling in tile count and
//! SRAM capacity. The model then *derives* totals, normalized ratios and
//! energy efficiency from measured activity, so experiments that change
//! the configuration (Fig. 18 scaling) or the AM size (Table V schemes)
//! respond the way the paper's numbers do.
//!
//! * [`components`] — per-component power/area breakdowns per
//!   architecture.
//! * [`activity`] — bottom-up event-level energy from simulator
//!   activity counts.
//! * [`efficiency`] — energy, energy efficiency relative to VAA, and the
//!   off-chip energy model behind the paper's "off-chip accesses are two
//!   orders of magnitude more expensive" argument.


#![warn(missing_docs)]

pub mod activity;
pub mod components;
pub mod efficiency;

pub use activity::{activity_energy, ActivityCounts, ActivityEnergy};
pub use components::{area_breakdown, power_breakdown, Breakdown};
pub use efficiency::{energy_joules, offchip_energy_joules, relative_efficiency};
