//! The service's wire protocol: JSON evaluation requests in, the exact
//! runner results out.
//!
//! [`EvalRequest`] names the same knobs the CLI exposes — model, dataset,
//! sample, resolution, seed, architecture, storage scheme, memory node —
//! and [`result_to_json`] renders a [`NetworkResult`] with full fidelity:
//! every per-layer counter the runner produces, integers as integers
//! (`u64`-exact, see `diffy_core::json`), floats in shortest-roundtrip
//! form. Serialization is deterministic, so two evaluations that are
//! bit-identical in memory are byte-identical on the wire — the property
//! the end-to-end tests assert.

use diffy_core::accelerator::{EvalOptions, NetworkResult, SchemeChoice};
use diffy_core::json::JsonValue;
use diffy_core::runner::{VideoSpec, WorkloadOptions, HD_PIXELS};
use diffy_encoding::StorageScheme;
use diffy_imaging::datasets::DatasetId;
use diffy_imaging::scenes::SceneKind;
use diffy_memsys::{MemoryNode, MemorySystem};
use diffy_models::CiModel;
use diffy_sim::{AcceleratorConfig, Architecture, NetworkCycles, TemporalMode};

/// Bounds on the requested trace resolution: wide enough for every
/// experiment in the paper, tight enough that one request cannot pin a
/// worker for minutes.
pub const MIN_RESOLUTION: usize = 16;
/// See [`MIN_RESOLUTION`].
pub const MAX_RESOLUTION: usize = 512;

/// One parsed evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Model to trace.
    pub model: CiModel,
    /// Dataset the sample comes from.
    pub dataset: DatasetId,
    /// Sample index within the dataset.
    pub sample: usize,
    /// Square trace resolution.
    pub resolution: usize,
    /// Workload seed.
    pub seed: u64,
    /// Architecture to price.
    pub arch: Architecture,
    /// Activation storage scheme.
    pub scheme: SchemeChoice,
    /// Off-chip memory node.
    pub memory: MemoryNode,
    /// Per-request deadline in milliseconds; the server clamps it to its
    /// configured maximum.
    pub deadline_ms: Option<u64>,
    /// Artificial pre-evaluation sleep, honored only when the server was
    /// built with test hooks — lets tests exercise queueing and deadline
    /// paths deterministically.
    pub test_sleep_ms: Option<u64>,
}

impl EvalRequest {
    /// Parses and validates a request from its JSON body.
    pub fn from_json(v: &JsonValue) -> Result<EvalRequest, String> {
        if !matches!(v, JsonValue::Object(_)) {
            return Err("request body must be a JSON object".to_string());
        }
        let model = parse_model(required_str(v, "model")?)?;
        let dataset = parse_dataset(required_str(v, "dataset")?)?;
        // Range-check in u64 *before* narrowing to usize: `as usize`
        // truncates on 32-bit targets, so a huge value could wrap into
        // the valid range and evaluate the wrong sample/resolution.
        let sample_u64 = optional_u64(v, "sample")?.unwrap_or(0);
        if sample_u64 >= dataset.samples() as u64 {
            return Err(format!(
                "sample {sample_u64} out of range: {dataset} has {} samples",
                dataset.samples()
            ));
        }
        let sample = sample_u64 as usize; // < samples(): usize-exact
        let resolution_u64 = optional_u64(v, "resolution")?.unwrap_or(64);
        if !(MIN_RESOLUTION as u64..=MAX_RESOLUTION as u64).contains(&resolution_u64) {
            return Err(format!(
                "resolution {resolution_u64} out of range [{MIN_RESOLUTION}, {MAX_RESOLUTION}]"
            ));
        }
        let resolution = resolution_u64 as usize; // ≤ MAX_RESOLUTION: usize-exact
        let seed = optional_u64(v, "seed")?.unwrap_or(1);
        let arch = match v.get("arch") {
            None => Architecture::Diffy,
            Some(a) => parse_arch(a.as_str().ok_or("arch must be a string")?)?,
        };
        let scheme = match v.get("scheme") {
            None => SchemeChoice::Scheme(StorageScheme::delta_d(16)),
            Some(s) => parse_scheme(s.as_str().ok_or("scheme must be a string")?)?,
        };
        let memory = match v.get("memory") {
            None => MemoryNode::Ddr4_3200,
            Some(m) => parse_memory(m.as_str().ok_or("memory must be a string")?)?,
        };
        Ok(EvalRequest {
            model,
            dataset,
            sample,
            resolution,
            seed,
            arch,
            scheme,
            memory,
            deadline_ms: optional_u64(v, "deadline_ms")?,
            test_sleep_ms: optional_u64(v, "test_sleep_ms")?,
        })
    }

    /// The workload options this request traces under.
    pub fn workload(&self) -> WorkloadOptions {
        WorkloadOptions { resolution: self.resolution, samples_per_dataset: 1, seed: self.seed }
    }

    /// The evaluation options this request prices under (Table IV
    /// configuration, like the CLI).
    pub fn eval_options(&self) -> EvalOptions {
        EvalOptions {
            arch: self.arch,
            cfg: AcceleratorConfig::table4(),
            scheme: self.scheme,
            memory: MemorySystem::single(self.memory),
        }
    }
}

fn required_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .ok_or_else(|| format!("missing required field `{key}`"))?
        .as_str()
        .ok_or_else(|| format!("field `{key}` must be a string"))
}

fn optional_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(n) => {
            n.as_u64().map(Some).ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
        }
    }
}

/// Parses a model name (case-insensitive Table I spelling).
pub fn parse_model(name: &str) -> Result<CiModel, String> {
    CiModel::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown model `{name}` (DnCNN/FFDNet/IRCNN/JointNet/VDSR)"))
}

/// Parses a dataset name (case-insensitive Table II spelling).
pub fn parse_dataset(name: &str) -> Result<DatasetId, String> {
    DatasetId::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let all: Vec<&str> = DatasetId::ALL.iter().map(|d| d.name()).collect();
            format!("unknown dataset `{name}` ({})", all.join("/"))
        })
}

/// Parses an architecture name (case-insensitive).
pub fn parse_arch(name: &str) -> Result<Architecture, String> {
    [Architecture::Vaa, Architecture::Pra, Architecture::Diffy, Architecture::Scnn]
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown arch `{name}` (VAA/PRA/Diffy/SCNN)"))
}

/// Parses a storage-scheme choice (the CLI's `--scheme` vocabulary).
pub fn parse_scheme(name: &str) -> Result<SchemeChoice, String> {
    Ok(match name {
        "DeltaD16" => SchemeChoice::Scheme(StorageScheme::delta_d(16)),
        "NoCompression" => SchemeChoice::Scheme(StorageScheme::NoCompression),
        "Profiled" => SchemeChoice::Profiled { quantile: 0.999 },
        "RawD16" => SchemeChoice::Scheme(StorageScheme::raw_d(16)),
        "Ideal" => SchemeChoice::Ideal,
        other => {
            return Err(format!(
                "unknown scheme `{other}` (NoCompression/Profiled/RawD16/DeltaD16/Ideal)"
            ))
        }
    })
}

/// Parses a memory-node name (the CLI's `--memory` vocabulary).
pub fn parse_memory(name: &str) -> Result<MemoryNode, String> {
    Ok(match name {
        "DDR4-3200" => MemoryNode::Ddr4_3200,
        "DDR3-1600" => MemoryNode::Ddr3_1600,
        "LPDDR3-1600" => MemoryNode::Lpddr3_1600,
        "LPDDR3E-2133" => MemoryNode::Lpddr3e2133,
        "LPDDR4-3200" => MemoryNode::Lpddr4_3200,
        "LPDDR4X-3733" => MemoryNode::Lpddr4x3733,
        "LPDDR4X-4267" => MemoryNode::Lpddr4x4267,
        "HBM2" => MemoryNode::Hbm2,
        "HBM3" => MemoryNode::Hbm3,
        other => return Err(format!("unknown memory node `{other}`")),
    })
}

/// Serializes a [`NetworkResult`] with full fidelity: the same per-layer
/// compute/traffic/timing counters the runner produces, plus the derived
/// totals the CLI prints. `source_pixels` drives the HD FPS projection.
///
/// Deterministic: equal results (and pixel counts) serialize to equal
/// strings, so "served response == direct evaluation" can be asserted
/// bytewise.
pub fn result_to_json(result: &NetworkResult, source_pixels: u64) -> JsonValue {
    let layers: Vec<JsonValue> = result
        .layers
        .iter()
        .map(|l| {
            JsonValue::object(vec![
                ("name", JsonValue::from(l.name.as_str())),
                (
                    "compute",
                    JsonValue::object(vec![
                        ("cycles", l.compute.cycles.into()),
                        ("useful_slots", l.compute.useful_slots.into()),
                        ("total_slots", l.compute.total_slots.into()),
                        ("compute_events", l.compute.compute_events.into()),
                        ("filter_passes", l.compute.filter_passes.into()),
                        ("macs", l.compute.macs.into()),
                    ]),
                ),
                (
                    "traffic",
                    JsonValue::object(vec![
                        ("imap_read_bytes", l.traffic.imap_read_bytes.into()),
                        ("omap_write_bytes", l.traffic.omap_write_bytes.into()),
                        ("weight_bytes", l.traffic.weight_bytes.into()),
                    ]),
                ),
                (
                    "timing",
                    JsonValue::object(vec![
                        ("compute_cycles", l.timing.compute_cycles.into()),
                        ("memory_cycles", l.timing.memory_cycles.into()),
                        ("total_cycles", l.timing.total_cycles.into()),
                        ("stall_cycles", l.timing.stall_cycles.into()),
                    ]),
                ),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("model", JsonValue::from(result.model.as_str())),
        ("arch", JsonValue::from(result.arch)),
        ("scheme", JsonValue::from(result.scheme.as_str())),
        ("frequency_ghz", JsonValue::from(result.frequency_ghz)),
        ("source_pixels", source_pixels.into()),
        ("layers", JsonValue::Array(layers)),
        (
            "totals",
            JsonValue::object(vec![
                ("total_cycles", result.total_cycles().into()),
                ("compute_cycles", result.compute_cycles().into()),
                ("stall_cycles", result.stall_cycles().into()),
                ("total_traffic_bytes", result.total_traffic_bytes().into()),
                ("activation_traffic_bytes", result.activation_traffic_bytes().into()),
                ("fps", JsonValue::from(result.fps())),
                ("hd_fps", JsonValue::from(result.fps_scaled(source_pixels, HD_PIXELS))),
            ]),
        ),
    ])
}

/// Largest accepted streaming-session frame horizon. The horizon is
/// part of the stream's identity (pan content depends on it), so it is
/// fixed at session create; this cap bounds both the wide-scene render
/// and the per-session state a client can pin.
pub const MAX_SESSION_FRAMES: usize = 64;
/// Largest accepted per-frame camera pan, in pixels.
pub const MAX_PAN_PX: usize = 32;

/// One parsed `POST /session` body: the identity of a streaming video
/// session — which synthetic stream to run and how to exploit the
/// cross-frame correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionRequest {
    /// Model every frame runs through.
    pub model: CiModel,
    /// Scene category of the panning content (the video "dataset").
    pub scene: SceneKind,
    /// Square frame resolution.
    pub resolution: usize,
    /// Total frame horizon, fixed for the session's lifetime.
    pub frames: usize,
    /// Horizontal camera pan in pixels per frame.
    pub pan_px: usize,
    /// Per-frame sensor-noise amplitude in `[0, 1]`.
    pub noise: f32,
    /// Seed for scene, noise, and weights.
    pub seed: u64,
    /// Temporal engine mode (Diffy-T or Diffy-ST).
    pub mode: TemporalMode,
}

impl SessionRequest {
    /// Parses and validates a session-create request from its JSON body.
    pub fn from_json(v: &JsonValue) -> Result<SessionRequest, String> {
        if !matches!(v, JsonValue::Object(_)) {
            return Err("request body must be a JSON object".to_string());
        }
        let model = parse_model(required_str(v, "model")?)?;
        let scene = match v.get("scene") {
            None => SceneKind::City,
            Some(s) => parse_scene(s.as_str().ok_or("scene must be a string")?)?,
        };
        let resolution_u64 = optional_u64(v, "resolution")?.unwrap_or(64);
        if !(MIN_RESOLUTION as u64..=MAX_RESOLUTION as u64).contains(&resolution_u64) {
            return Err(format!(
                "resolution {resolution_u64} out of range [{MIN_RESOLUTION}, {MAX_RESOLUTION}]"
            ));
        }
        let frames_u64 = optional_u64(v, "frames")?.unwrap_or(8);
        if !(1..=MAX_SESSION_FRAMES as u64).contains(&frames_u64) {
            return Err(format!("frames {frames_u64} out of range [1, {MAX_SESSION_FRAMES}]"));
        }
        let pan_u64 = optional_u64(v, "pan_px")?.unwrap_or(1);
        if pan_u64 > MAX_PAN_PX as u64 {
            return Err(format!("pan_px {pan_u64} out of range [0, {MAX_PAN_PX}]"));
        }
        let noise = match v.get("noise") {
            None | Some(JsonValue::Null) => 0.0f32,
            Some(n) => {
                let f = n
                    .as_f64()
                    .or_else(|| n.as_u64().map(|u| u as f64))
                    .ok_or("field `noise` must be a number")?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("noise {f} out of range [0, 1]"));
                }
                f as f32
            }
        };
        let seed = optional_u64(v, "seed")?.unwrap_or(1);
        let mode = match v.get("mode") {
            None => TemporalMode::SpatioTemporal,
            Some(m) => parse_temporal_mode(m.as_str().ok_or("mode must be a string")?)?,
        };
        Ok(SessionRequest {
            model,
            scene,
            resolution: resolution_u64 as usize, // range-checked above
            frames: frames_u64 as usize,
            pan_px: pan_u64 as usize,
            noise,
            seed,
            mode,
        })
    }

    /// The video-stream identity this session evaluates.
    pub fn spec(&self) -> VideoSpec {
        VideoSpec::new(
            self.model,
            self.scene,
            self.resolution,
            self.frames,
            self.pan_px,
            self.noise,
            self.seed,
        )
    }
}

/// One parsed `POST /session/{id}/frame` body. Both fields are optional
/// guards: when present they must match the session's configuration and
/// expected next frame, so a client can detect drift (a frame posted to
/// the wrong session, a lost response) instead of silently advancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameRequest {
    /// Expected frame resolution; rejected if it differs from the
    /// session's.
    pub resolution: Option<u64>,
    /// Expected frame index; rejected if it differs from the session's
    /// next frame.
    pub frame: Option<u64>,
}

impl FrameRequest {
    /// Parses a frame request from its JSON body. An empty body is the
    /// common case (no guards) — callers map it to `{}` before parsing.
    pub fn from_json(v: &JsonValue) -> Result<FrameRequest, String> {
        if !matches!(v, JsonValue::Object(_)) {
            return Err("request body must be a JSON object".to_string());
        }
        Ok(FrameRequest {
            resolution: optional_u64(v, "resolution")?,
            frame: optional_u64(v, "frame")?,
        })
    }
}

/// Parses a scene-kind name (case-insensitive).
pub fn parse_scene(name: &str) -> Result<SceneKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "nature" => Ok(SceneKind::Nature),
        "city" => Ok(SceneKind::City),
        "texture" => Ok(SceneKind::Texture),
        other => Err(format!("unknown scene `{other}` (Nature/City/Texture)")),
    }
}

/// Parses a temporal-mode name (case-insensitive; the paper's §V
/// architecture labels are accepted as aliases).
pub fn parse_temporal_mode(name: &str) -> Result<TemporalMode, String> {
    match name.to_ascii_lowercase().as_str() {
        "temporal" | "diffy-t" => Ok(TemporalMode::TemporalOnly),
        "spatiotemporal" | "diffy-st" => Ok(TemporalMode::SpatioTemporal),
        other => Err(format!("unknown mode `{other}` (temporal/spatiotemporal)")),
    }
}

/// The wire name of a scene kind.
pub fn scene_name(scene: SceneKind) -> &'static str {
    match scene {
        SceneKind::Nature => "Nature",
        SceneKind::City => "City",
        SceneKind::Texture => "Texture",
    }
}

/// The wire name of a temporal mode.
pub fn temporal_mode_name(mode: TemporalMode) -> &'static str {
    match mode {
        TemporalMode::TemporalOnly => "temporal",
        TemporalMode::SpatioTemporal => "spatiotemporal",
    }
}

/// Serializes a [`NetworkCycles`] with full fidelity: every per-layer
/// counter the term-serial engines produce, plus the derived totals.
/// Deterministic, like [`result_to_json`] — equal results serialize to
/// equal strings, so "session frame == direct `temporal_network`" can be
/// asserted bytewise.
pub fn cycles_to_json(cycles: &NetworkCycles) -> JsonValue {
    let layers: Vec<JsonValue> = cycles
        .layers
        .iter()
        .map(|l| {
            JsonValue::object(vec![
                ("cycles", l.cycles.into()),
                ("useful_slots", l.useful_slots.into()),
                ("total_slots", l.total_slots.into()),
                ("compute_events", l.compute_events.into()),
                ("filter_passes", l.filter_passes.into()),
                ("macs", l.macs.into()),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("arch", JsonValue::from(cycles.arch)),
        ("layers", JsonValue::Array(layers)),
        (
            "totals",
            JsonValue::object(vec![
                ("cycles", cycles.total_cycles().into()),
                ("macs", cycles.total_macs().into()),
                ("utilization", JsonValue::from(cycles.utilization())),
            ]),
        ),
    ])
}

/// The standard error body: `{"error": <message>}`.
pub fn error_body(message: &str) -> String {
    JsonValue::object(vec![("error", JsonValue::from(message))]).to_json()
}

/// Largest accepted `POST /evaluate/batch` item count: big enough for a
/// full grid row (every model × dataset pair), small enough that one
/// batch cannot pin the pool for minutes.
pub const MAX_BATCH_ITEMS: usize = 64;

/// A parsed `POST /evaluate/batch` request: shared defaults merged under
/// per-item overrides, each item parsed with the exact same rules (and
/// rejection reasons) as a standalone `POST /evaluate` body.
///
/// Item parse failures do not fail the batch — they land in their item's
/// slot so the response can report per-item errors while the valid items
/// still evaluate. Structural problems (body not an object, `items`
/// missing/empty/oversized) reject the whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Per-item parse outcome, in request order.
    pub items: Vec<Result<EvalRequest, String>>,
    /// Batch-level deadline in milliseconds, clamped by the server like
    /// a standalone request's. Item-level `deadline_ms` fields are
    /// ignored — one budget governs the whole batch.
    pub deadline_ms: Option<u64>,
}

impl BatchRequest {
    /// Parses `{"defaults": {...}?, "items": [{...}, ...], "deadline_ms": n?}`.
    pub fn from_json(v: &JsonValue) -> Result<BatchRequest, String> {
        if !matches!(v, JsonValue::Object(_)) {
            return Err("batch body must be a JSON object".to_string());
        }
        let defaults = match v.get("defaults") {
            None => None,
            Some(d @ JsonValue::Object(_)) => Some(d),
            Some(_) => return Err("field `defaults` must be a JSON object".to_string()),
        };
        let items = match v.get("items") {
            None => return Err("missing required field `items`".to_string()),
            Some(JsonValue::Array(items)) => items,
            Some(_) => return Err("field `items` must be an array".to_string()),
        };
        if items.is_empty() {
            return Err("field `items` must not be empty".to_string());
        }
        if items.len() > MAX_BATCH_ITEMS {
            return Err(format!("too many items: {} > {MAX_BATCH_ITEMS}", items.len()));
        }
        let deadline_ms = optional_u64(v, "deadline_ms")?;
        let items = items
            .iter()
            .map(|item| {
                if !matches!(item, JsonValue::Object(_)) {
                    return Err("item must be a JSON object".to_string());
                }
                EvalRequest::from_json(&merge_objects(defaults, item))
            })
            .collect();
        Ok(BatchRequest { items, deadline_ms })
    }
}

/// Shallow object merge: `base`'s members in order, overridden by
/// `overrides` where keys collide, with `overrides`-only keys appended.
/// Member order is deterministic, so two items with the same effective
/// fields parse — and therefore evaluate and serialize — identically.
fn merge_objects(base: Option<&JsonValue>, overrides: &JsonValue) -> JsonValue {
    let mut members: Vec<(String, JsonValue)> = match base {
        Some(JsonValue::Object(m)) => m.clone(),
        _ => Vec::new(),
    };
    if let JsonValue::Object(over) = overrides {
        for (k, v) in over {
            match members.iter_mut().find(|(name, _)| name == k) {
                Some(slot) => slot.1 = v.clone(),
                None => members.push((k.clone(), v.clone())),
            }
        }
    }
    JsonValue::Object(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_core::json::parse;
    use diffy_core::runner::ci_trace_bundle;

    #[test]
    fn minimal_request_gets_defaults() {
        let v = parse(r#"{"model": "IRCNN", "dataset": "Kodak24"}"#).unwrap();
        let r = EvalRequest::from_json(&v).unwrap();
        assert_eq!(r.model, CiModel::Ircnn);
        assert_eq!(r.dataset, DatasetId::Kodak24);
        assert_eq!((r.sample, r.resolution, r.seed), (0, 64, 1));
        assert_eq!(r.arch, Architecture::Diffy);
        assert_eq!(r.scheme, SchemeChoice::Scheme(StorageScheme::delta_d(16)));
        assert_eq!(r.memory, MemoryNode::Ddr4_3200);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn full_request_parses_case_insensitively() {
        let v = parse(
            r#"{"model": "dncnn", "dataset": "hd33", "sample": 2, "resolution": 32,
                "seed": 9, "arch": "vaa", "scheme": "Ideal", "memory": "HBM2",
                "deadline_ms": 250}"#,
        )
        .unwrap();
        let r = EvalRequest::from_json(&v).unwrap();
        assert_eq!(r.model, CiModel::DnCnn);
        assert_eq!(r.dataset, DatasetId::Hd33);
        assert_eq!((r.sample, r.resolution, r.seed), (2, 32, 9));
        assert_eq!(r.arch, Architecture::Vaa);
        assert_eq!(r.scheme, SchemeChoice::Ideal);
        assert_eq!(r.memory, MemoryNode::Hbm2);
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn invalid_requests_are_rejected_with_reasons() {
        let cases = [
            (r#"{"dataset": "Kodak24"}"#, "missing required field `model`"),
            (r#"{"model": "IRCNN"}"#, "missing required field `dataset`"),
            (r#"{"model": "nope", "dataset": "Kodak24"}"#, "unknown model"),
            (r#"{"model": "IRCNN", "dataset": "nope"}"#, "unknown dataset"),
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "sample": 24}"#, "out of range"),
            // 2^32: would truncate to sample 0 (in range!) on a 32-bit
            // `as usize` — the u64 range check must reject it first.
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "sample": 4294967296}"#, "out of range"),
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 8}"#, "out of range"),
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 4096}"#, "out of range"),
            // 2^32 + 64: would truncate to the valid resolution 64 on a
            // 32-bit `as usize`.
            (
                r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 4294967360}"#,
                "out of range",
            ),
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "arch": "TPU"}"#, "unknown arch"),
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "scheme": "zip"}"#, "unknown scheme"),
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "memory": "SRAM"}"#, "unknown memory"),
            (r#"{"model": "IRCNN", "dataset": "Kodak24", "seed": -1}"#, "non-negative"),
            (r#"[1]"#, "must be a JSON object"),
        ];
        for (body, needle) in cases {
            let err = EvalRequest::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn result_serialization_is_deterministic_and_faithful() {
        let opts = WorkloadOptions::test_small();
        let bundle = ci_trace_bundle(CiModel::Ircnn, DatasetId::Kodak24, 0, &opts);
        let eval = EvalOptions::new(Architecture::Diffy, SchemeChoice::Ideal);
        let result = bundle.evaluate(&eval);

        let a = result_to_json(&result, bundle.source_pixels).to_json();
        let b = result_to_json(&bundle.evaluate(&eval), bundle.source_pixels).to_json();
        assert_eq!(a, b, "equal results must serialize identically");

        let v = parse(&a).unwrap();
        assert_eq!(v.get("arch").unwrap().as_str(), Some("Diffy"));
        assert_eq!(
            v.get("totals").unwrap().get("total_cycles").unwrap().as_u64(),
            Some(result.total_cycles())
        );
        let layers = v.get("layers").unwrap().as_array().unwrap();
        assert_eq!(layers.len(), result.layers.len());
        assert_eq!(
            layers[0].get("compute").unwrap().get("macs").unwrap().as_u64(),
            Some(result.layers[0].compute.macs)
        );
        assert_eq!(
            layers[0].get("timing").unwrap().get("stall_cycles").unwrap().as_u64(),
            Some(result.layers[0].timing.stall_cycles)
        );
    }

    #[test]
    fn error_body_is_json() {
        assert_eq!(error_body("queue full"), r#"{"error":"queue full"}"#);
    }

    #[test]
    fn batch_items_merge_defaults_under_overrides() {
        let v = parse(
            r#"{"defaults": {"model": "IRCNN", "dataset": "Kodak24", "seed": 3},
                "items": [{}, {"model": "VDSR"}, {"seed": 9, "resolution": 32}],
                "deadline_ms": 500}"#,
        )
        .unwrap();
        let b = BatchRequest::from_json(&v).unwrap();
        assert_eq!(b.deadline_ms, Some(500));
        assert_eq!(b.items.len(), 3);
        let r0 = b.items[0].as_ref().unwrap();
        assert_eq!((r0.model, r0.seed, r0.resolution), (CiModel::Ircnn, 3, 64));
        let r1 = b.items[1].as_ref().unwrap();
        assert_eq!((r1.model, r1.dataset, r1.seed), (CiModel::Vdsr, DatasetId::Kodak24, 3));
        let r2 = b.items[2].as_ref().unwrap();
        assert_eq!((r2.model, r2.seed, r2.resolution), (CiModel::Ircnn, 9, 32));
    }

    #[test]
    fn batch_item_parses_exactly_like_a_standalone_request() {
        // The merged item must go through the same parser as a
        // standalone body — same defaults, same rejection reasons.
        let standalone =
            parse(r#"{"model": "dncnn", "dataset": "hd33", "resolution": 32, "arch": "vaa"}"#)
                .unwrap();
        let expect = EvalRequest::from_json(&standalone).unwrap();
        let batch = parse(
            r#"{"defaults": {"model": "dncnn", "dataset": "hd33"},
                "items": [{"resolution": 32, "arch": "vaa"}]}"#,
        )
        .unwrap();
        let b = BatchRequest::from_json(&batch).unwrap();
        assert_eq!(b.items[0].as_ref().unwrap(), &expect);
    }

    #[test]
    fn batch_item_errors_are_per_item_not_fatal() {
        let v = parse(
            r#"{"defaults": {"dataset": "Kodak24"},
                "items": [{"model": "IRCNN"}, {"model": "nope"}, {}, [1]]}"#,
        )
        .unwrap();
        let b = BatchRequest::from_json(&v).unwrap();
        assert!(b.items[0].is_ok());
        assert!(b.items[1].as_ref().unwrap_err().contains("unknown model"));
        assert!(b.items[2].as_ref().unwrap_err().contains("missing required field `model`"));
        assert!(b.items[3].as_ref().unwrap_err().contains("must be a JSON object"));
    }

    #[test]
    fn minimal_session_request_gets_defaults() {
        let v = parse(r#"{"model": "DnCNN"}"#).unwrap();
        let r = SessionRequest::from_json(&v).unwrap();
        assert_eq!(r.model, CiModel::DnCnn);
        assert_eq!(r.scene, SceneKind::City);
        assert_eq!((r.resolution, r.frames, r.pan_px), (64, 8, 1));
        assert_eq!((r.noise, r.seed), (0.0, 1));
        assert_eq!(r.mode, TemporalMode::SpatioTemporal);
        let spec = r.spec();
        assert_eq!((spec.resolution, spec.frames, spec.seed), (64, 8, 1));
    }

    #[test]
    fn full_session_request_parses_case_insensitively() {
        let v = parse(
            r#"{"model": "ircnn", "scene": "nature", "resolution": 32, "frames": 4,
                "pan_px": 2, "noise": 0.05, "seed": 9, "mode": "Diffy-T"}"#,
        )
        .unwrap();
        let r = SessionRequest::from_json(&v).unwrap();
        assert_eq!(r.model, CiModel::Ircnn);
        assert_eq!(r.scene, SceneKind::Nature);
        assert_eq!((r.resolution, r.frames, r.pan_px, r.seed), (32, 4, 2, 9));
        assert_eq!(r.mode, TemporalMode::TemporalOnly);
        assert!((r.noise - 0.05).abs() < 1e-6);
    }

    #[test]
    fn invalid_session_requests_are_rejected_with_reasons() {
        let cases = [
            (r#"{}"#, "missing required field `model`"),
            (r#"{"model": "nope"}"#, "unknown model"),
            (r#"{"model": "IRCNN", "scene": "desert"}"#, "unknown scene"),
            (r#"{"model": "IRCNN", "resolution": 8}"#, "out of range"),
            (r#"{"model": "IRCNN", "resolution": 4096}"#, "out of range"),
            (r#"{"model": "IRCNN", "frames": 0}"#, "out of range"),
            (r#"{"model": "IRCNN", "frames": 65}"#, "out of range"),
            // 2^32 + 4: would truncate into range on a 32-bit `as usize`.
            (r#"{"model": "IRCNN", "frames": 4294967300}"#, "out of range"),
            (r#"{"model": "IRCNN", "pan_px": 33}"#, "out of range"),
            (r#"{"model": "IRCNN", "noise": 1.5}"#, "out of range"),
            (r#"{"model": "IRCNN", "noise": -0.1}"#, "out of range"),
            (r#"{"model": "IRCNN", "noise": "loud"}"#, "must be a number"),
            (r#"{"model": "IRCNN", "seed": -1}"#, "non-negative"),
            (r#"{"model": "IRCNN", "mode": "psychic"}"#, "unknown mode"),
            (r#"[1]"#, "must be a JSON object"),
        ];
        for (body, needle) in cases {
            let err = SessionRequest::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn frame_request_guards_parse() {
        let r = FrameRequest::from_json(&parse("{}").unwrap()).unwrap();
        assert_eq!(r, FrameRequest::default());
        let r =
            FrameRequest::from_json(&parse(r#"{"resolution": 32, "frame": 3}"#).unwrap()).unwrap();
        assert_eq!((r.resolution, r.frame), (Some(32), Some(3)));
        let err = FrameRequest::from_json(&parse(r#"{"frame": -1}"#).unwrap()).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = FrameRequest::from_json(&parse("[]").unwrap()).unwrap_err();
        assert!(err.contains("JSON object"), "{err}");
    }

    #[test]
    fn cycles_serialization_is_deterministic_and_faithful() {
        use diffy_core::runner::{video_frame_bundle, VideoSpec};
        use diffy_sim::temporal_network;
        let spec = VideoSpec::new(CiModel::Ircnn, SceneKind::City, 24, 2, 1, 0.0, 3);
        let prev = video_frame_bundle(&spec, 0);
        let cur = video_frame_bundle(&spec, 1);
        let cycles = temporal_network(
            &prev.trace,
            &cur.trace,
            &AcceleratorConfig::table4(),
            TemporalMode::SpatioTemporal,
        );
        let a = cycles_to_json(&cycles).to_json();
        let b = cycles_to_json(&cycles.clone()).to_json();
        assert_eq!(a, b);
        let v = parse(&a).unwrap();
        assert_eq!(v.get("arch").unwrap().as_str(), Some("Diffy-ST"));
        assert_eq!(
            v.get("totals").unwrap().get("cycles").unwrap().as_u64(),
            Some(cycles.total_cycles())
        );
        let layers = v.get("layers").unwrap().as_array().unwrap();
        assert_eq!(layers.len(), cycles.layers.len());
        assert_eq!(
            layers[0].get("macs").unwrap().as_u64(),
            Some(cycles.layers[0].macs)
        );
    }

    #[test]
    fn batch_structural_errors_reject_the_whole_batch() {
        let cases = [
            (r#"[1]"#, "must be a JSON object"),
            (r#"{"defaults": 5, "items": [{}]}"#, "`defaults` must be a JSON object"),
            (r#"{"items": {}}"#, "`items` must be an array"),
            (r#"{"items": []}"#, "must not be empty"),
            (r#"{"defaults": {}}"#, "missing required field `items`"),
            (r#"{"items": [{}], "deadline_ms": -5}"#, "non-negative"),
        ];
        for (body, needle) in cases {
            let err = BatchRequest::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
        let many = format!(r#"{{"items": [{}]}}"#, vec!["{}"; MAX_BATCH_ITEMS + 1].join(","));
        let err = BatchRequest::from_json(&parse(&many).unwrap()).unwrap_err();
        assert!(err.contains("too many items"), "{err}");
    }
}
