//! Horizontal sharding: N server instances, each owning a private
//! `SweepCache` partition, behind a thin fan-out router.
//!
//! The partition function is a **consistent-hash ring** ([`ShardRing`]):
//! every shard contributes [`VNODES`] virtual points hashed onto a u64
//! circle, and a request's trace key routes to the first point at or
//! after the key's own hash. Growing the ring from N to N+1 shards moves
//! only the keys that land on the new shard's points — every other key
//! keeps its cache partition warm (the same partition-stability argument
//! the module-to-processor mapping in the berkeley-emulation-engine
//! compiler leans on).
//!
//! Routing is by **trace key**, not by connection: two clients asking
//! for the same `(model, dataset, sample, resolution, seed)` grid point
//! always reach the same shard and share its cache entry, while
//! request-only knobs (`deadline_ms`, `test_sleep_ms`) don't affect
//! placement. Requests that carry no single trace key route
//! deterministically anyway: batches by body hash, streaming sessions to
//! a fixed *session-home* shard (sessions are stateful, and instance ids
//! like `s-1` are only unique within one instance), `/trace` to shard 0.
//!
//! The router itself is deliberately thin: it never parses responses, it
//! relays the downstream body bytes verbatim upstream
//! ([`KeepAliveClient::request_raw`]) and re-emits the shard's status and
//! body through the same [`write_json_response_conn`] the single-instance
//! server uses — which is what makes routed responses byte-identical to
//! the unsharded path (asserted in `tests/serve_shards.rs`). Router-local
//! endpoints are the ones that span shards: `GET /metrics` aggregates
//! every instance's snapshot plus the routing table, `POST /shutdown`
//! drains all instances, `GET /healthz` answers from the router.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use diffy_core::json::JsonValue;
use diffy_core::parallel::{run_jobs, Jobs};

use crate::client::KeepAliveClient;
use crate::http::{path_segments, read_request_with, write_json_response_conn};
use crate::metrics;
use crate::poller::{Poller, LISTENER_TOKEN};
use crate::protocol::{error_body, EvalRequest};
use crate::server::{ServeConfig, Server, ServerHandle};

/// Virtual points each shard contributes to the ring. 64 keeps the
/// per-shard key share within a few percent of uniform while the whole
/// ring for 16 shards still fits in a kilobyte.
pub const VNODES: usize = 64;

/// How long the router's accept loop sleeps in the poller when nothing
/// is ready — also the drain-notice latency bound.
const ROUTER_POLL_TICK: Duration = Duration::from_millis(25);

/// Upper bound on accepts drained per listener wakeup, so one readiness
/// event can't monopolize the loop under an accept storm.
const ROUTER_ACCEPT_BURST: usize = 256;

/// Cap on the idle read window a router worker arms while waiting for a
/// downstream request. Bounds how long a worker can sit on a silent
/// keep-alive connection during drain; clients reconnect transparently.
const ROUTER_IDLE_SLICE: Duration = Duration::from_secs(2);

/// Write budget for responses relayed downstream.
const ROUTER_WRITE_BUDGET: Duration = Duration::from_secs(10);

/// 64-bit FNV-1a — the ring's hash. Stable across runs and platforms
/// (no `RandomState`), cheap on short keys, and good enough dispersion
/// that 64 vnodes per shard land within a few percent of uniform.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over `shards` partitions.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(point_hash, shard)` sorted by hash; lookup is a binary search
    /// for the first point at or after the key's hash, wrapping to the
    /// first point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRing {
    /// A ring over `shards` partitions ([`VNODES`] points each).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a shard ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                points.push((fnv1a(format!("shard-{shard}-vnode-{vnode}").as_bytes()), shard));
            }
        }
        points.sort_unstable();
        // A hash collision between two shards' points would make lookup
        // order-dependent; keep the first (lowest shard) deterministically.
        points.dedup_by_key(|p| p.0);
        Self { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning hash `h`: first ring point at or after `h`,
    /// wrapping around the circle.
    pub fn shard_of_hash(&self, h: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }

    /// The shard owning a string key.
    pub fn shard_of_key(&self, key: &str) -> usize {
        self.shard_of_hash(fnv1a(key.as_bytes()))
    }

    /// The shard owning a byte string (fallback for bodies with no
    /// single trace key).
    pub fn shard_of_bytes(&self, bytes: &[u8]) -> usize {
        self.shard_of_hash(fnv1a(bytes))
    }
}

/// The canonical trace key of a `POST /evaluate` body: the workload
/// identity `(model, dataset, sample, resolution, seed)` with protocol
/// defaults applied, so `{"model":"ircnn","dataset":"kodak24"}` and the
/// same request spelled with explicit `"sample":0` route to the same
/// shard. Request-only knobs (deadline, arch, scheme, memory, test
/// hooks) are deliberately excluded: they don't change which trace is
/// cached. `None` when the body doesn't parse as an evaluation request —
/// the shard will reject it with the same 4xx whichever instance sees it.
pub fn trace_key(body: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let value = diffy_core::json::parse(text).ok()?;
    let req = EvalRequest::from_json(&value).ok()?;
    Some(format!(
        "{:?}|{}|{}|{}|{}",
        req.model, req.dataset, req.sample, req.resolution, req.seed
    ))
}

/// Where a request routes, given the ring and the fixed session-home
/// shard. Free function (not a `RouterState` method) so unit tests can
/// exercise the routing table without booting instances.
fn route_for(ring: &ShardRing, session_home: usize, method: &str, path: &str, body: &[u8]) -> usize {
    let segments = path_segments(path);
    match segments.as_slice() {
        // Sessions are stateful and their ids are per-instance, so all
        // session traffic lives on one designated shard.
        ["session", ..] => session_home,
        ["evaluate"] => match trace_key(body) {
            Some(key) => ring.shard_of_key(&key),
            None => ring.shard_of_bytes(body),
        },
        // A batch can span many trace keys; route the whole batch by its
        // body hash — any shard computes it correctly, placement is just
        // a cache-affinity heuristic.
        ["evaluate", "batch"] => ring.shard_of_bytes(body),
        // The capture endpoint reads one server's trace ring; pin it.
        ["trace", ..] => 0,
        _ => {
            // Unknown/other paths still route deterministically: hash
            // method + path + body so repeated probes hit one shard.
            let mut keyed = Vec::with_capacity(method.len() + path.len() + body.len() + 2);
            keyed.extend_from_slice(method.as_bytes());
            keyed.push(b' ');
            keyed.extend_from_slice(path.as_bytes());
            keyed.push(b' ');
            keyed.extend_from_slice(body);
            ring.shard_of_bytes(&keyed)
        }
    }
}

/// Configuration for a sharded ensemble.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Router listen address (the address clients connect to). Shard
    /// instances bind ephemeral loopback ports of their own; the router
    /// reaches them in-process.
    pub addr: String,
    /// Number of server instances. Must be at least 1.
    pub shards: usize,
    /// Router forwarding workers (each owns one downstream connection at
    /// a time plus a lazy upstream connection per shard).
    pub router_workers: usize,
    /// Per-instance configuration. `addr` and `handle_signals` are
    /// managed by the ensemble: each instance binds its own port, and
    /// signal handling (if requested) is installed once.
    pub base: ServeConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            shards: 2,
            router_workers: 4,
            base: ServeConfig::default(),
        }
    }
}

/// Shared router state: the ring, the shard endpoints, and the routing
/// counters `GET /metrics` reports.
struct RouterState {
    ring: ShardRing,
    shard_addrs: Vec<SocketAddr>,
    handles: Vec<ServerHandle>,
    session_home: usize,
    routed: Vec<AtomicU64>,
    route_errors: AtomicU64,
    requests: AtomicU64,
    draining: AtomicBool,
    idle_timeout: Duration,
    forward_timeout: Duration,
    max_requests_per_conn: u32,
}

impl RouterState {
    /// Whether the ensemble is draining — set locally (`POST /shutdown`
    /// through the router, [`ShardedHandle::shutdown`], signals) or
    /// observed on any instance (e.g. a shutdown posted straight to a
    /// shard): one draining instance drains the ensemble, so the
    /// conservation laws hold across every ledger at exit.
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.handles.iter().any(|h| h.is_shutting_down())
    }

    /// Starts the drain everywhere.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for handle in &self.handles {
            handle.shutdown();
        }
    }
}

/// A bounded handoff of accepted router connections to the forwarding
/// workers. Full queue → the acceptor sheds with `503` instead of
/// queueing unboundedly, mirroring the instance-level admission policy.
struct StreamQueue {
    inner: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl StreamQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless full or closed; the stream comes back on refusal
    /// so the acceptor can shed it.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().expect("router queue poisoned");
        if inner.1 || inner.0.len() >= self.capacity {
            return Err(stream);
        }
        inner.0.push_back(stream);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("router queue poisoned");
        loop {
            if let Some(stream) = inner.0.pop_front() {
                return Some(stream);
            }
            if inner.1 {
                return None;
            }
            inner = self.ready.wait(inner).expect("router queue poisoned");
        }
    }

    /// Closes the queue; blocked `pop`s drain the backlog then return
    /// `None`.
    fn close(&self) {
        self.inner.lock().expect("router queue poisoned").1 = true;
        self.ready.notify_all();
    }
}

/// Handle to a running [`ShardedServer`]: trigger and observe the drain
/// from another thread.
#[derive(Clone)]
pub struct ShardedHandle {
    state: Arc<RouterState>,
}

impl ShardedHandle {
    /// Starts a graceful drain of the router and every instance.
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Whether the ensemble has begun draining.
    pub fn is_shutting_down(&self) -> bool {
        self.state.draining()
    }
}

/// N bound server instances plus the bound router listener; [`run`] them
/// as one scoped-thread ensemble.
///
/// [`run`]: ShardedServer::run
pub struct ShardedServer {
    router: TcpListener,
    local_addr: SocketAddr,
    instances: Vec<Server>,
    state: Arc<RouterState>,
    router_workers: usize,
}

impl ShardedServer {
    /// Binds the router address and `shards` instances on ephemeral
    /// loopback ports. Nothing is served until [`ShardedServer::run`].
    pub fn bind(cfg: ShardedConfig) -> io::Result<ShardedServer> {
        if cfg.shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--shards must be at least 1",
            ));
        }
        let router = TcpListener::bind(&cfg.addr)?;
        let local_addr = router.local_addr()?;
        // Instances bind ephemeral ports on the router's interface; the
        // unspecified address is normalized to loopback for connecting.
        let instance_ip = connectable_ip(local_addr.ip());

        let mut instances = Vec::with_capacity(cfg.shards);
        let mut shard_addrs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let mut base = cfg.base.clone();
            base.addr = SocketAddr::new(instance_ip, 0).to_string();
            // One signal-handler installation covers the process; every
            // instance's drain check consults the same flag.
            base.handle_signals = cfg.base.handle_signals && shard == 0;
            let instance = Server::bind(base)?;
            shard_addrs.push(SocketAddr::new(instance_ip, instance.local_addr().port()));
            handles.push(instance.handle());
            instances.push(instance);
        }

        let ring = ShardRing::new(cfg.shards);
        let session_home = ring.shard_of_key("__session_home__");
        let state = Arc::new(RouterState {
            routed: (0..cfg.shards).map(|_| AtomicU64::new(0)).collect(),
            route_errors: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            idle_timeout: Duration::from_millis(cfg.base.idle_timeout_ms.max(10)),
            forward_timeout: Duration::from_millis(cfg.base.deadline_ms) + Duration::from_secs(10),
            max_requests_per_conn: cfg.base.max_requests_per_conn.max(1),
            ring,
            shard_addrs,
            handles,
            session_home,
        });
        Ok(ShardedServer {
            router,
            local_addr,
            instances,
            state,
            router_workers: cfg.router_workers.max(1),
        })
    }

    /// The router's bound address (clients connect here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound address of each shard instance, in shard order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.state.shard_addrs.clone()
    }

    /// A handle for triggering/observing the drain from another thread.
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle { state: Arc::clone(&self.state) }
    }

    /// Serves until drained: every instance's full worker pool and event
    /// loop, the router acceptor, and the forwarding workers run as one
    /// scoped-thread ensemble; returns once all of them have exited.
    pub fn run(self) -> io::Result<()> {
        let ShardedServer { router, instances, state, router_workers, .. } = self;
        router.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register_listener(&router, LISTENER_TOKEN)?;
        // Queue depth mirrors a single instance's admission bound scaled
        // by the worker count so the router sheds before it hoards.
        let queue = Arc::new(StreamQueue::new(router_workers * 4));

        let mut jobs: Vec<Box<dyn FnOnce() -> io::Result<()> + Send>> =
            Vec::with_capacity(instances.len() + 1 + router_workers);
        for instance in instances {
            jobs.push(Box::new(move || instance.run()));
        }
        {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            jobs.push(Box::new(move || router_accept(&state, &router, &poller, &queue)));
        }
        for _ in 0..router_workers {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            jobs.push(Box::new(move || {
                router_worker(&state, &queue);
                Ok(())
            }));
        }

        let n = jobs.len();
        let results = run_jobs(jobs, Jobs::new(n));
        results.into_iter().collect::<io::Result<Vec<()>>>().map(|_| ())
    }
}

/// Loopback counterpart of an unspecified bind address, so upstream
/// clients have something connectable.
fn connectable_ip(ip: IpAddr) -> IpAddr {
    match ip {
        IpAddr::V4(v4) if v4.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(v6) if v6.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        other => other,
    }
}

/// The router's accept loop: blocks in the poller, drains the listener
/// in bounded bursts, sheds with `503` when the worker queue is full.
fn router_accept(
    state: &RouterState,
    listener: &TcpListener,
    poller: &Poller,
    queue: &StreamQueue,
) -> io::Result<()> {
    let mut ready = Vec::new();
    while !state.draining() {
        poller.wait(&mut ready, ROUTER_POLL_TICK)?;
        if !ready.contains(&LISTENER_TOKEN) {
            continue;
        }
        for _ in 0..ROUTER_ACCEPT_BURST {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if let Err(stream) = queue.try_push(stream) {
                        shed(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
    queue.close();
    Ok(())
}

/// Refuses an accepted connection with `503` — the router-level
/// admission bound.
fn shed(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = write_json_response_conn(&mut stream, 503, &error_body("router queue full"), false);
}

/// One forwarding worker: serves queued connections to completion, one
/// at a time, reusing a lazy upstream connection per shard across all of
/// them.
fn router_worker(state: &RouterState, queue: &StreamQueue) {
    let mut upstreams: Vec<Option<KeepAliveClient>> =
        (0..state.shard_addrs.len()).map(|_| None).collect();
    while let Some(stream) = queue.pop() {
        serve_router_conn(state, stream, &mut upstreams);
    }
}

/// Lazily connects the worker's upstream client for `shard`.
fn upstream<'a>(
    state: &RouterState,
    upstreams: &'a mut [Option<KeepAliveClient>],
    shard: usize,
) -> &'a mut KeepAliveClient {
    upstreams[shard]
        .get_or_insert_with(|| KeepAliveClient::new(state.shard_addrs[shard], state.forward_timeout))
}

/// Serves one downstream connection until it closes, goes idle, errors,
/// or hits the per-connection request cap.
fn serve_router_conn(
    state: &RouterState,
    stream: TcpStream,
    upstreams: &mut [Option<KeepAliveClient>],
) {
    // The listener is nonblocking; the accepted socket must not be.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    let _ = writer.set_write_timeout(Some(ROUTER_WRITE_BUDGET));
    // Idle window per read; capped so drain never waits long on a silent
    // peer. A client whose pause exceeds the cap just reconnects.
    let idle = state.idle_timeout.min(ROUTER_IDLE_SLICE);
    let mut served: u32 = 0;

    loop {
        let mut tick = || writer.set_read_timeout(Some(idle));
        let request = match read_request_with(&mut reader, &mut tick) {
            // Idle close or a broken connection: nothing to answer.
            Err(_) => return,
            Ok(Err(bad)) => {
                // Parser-level rejections poison the framing; answer and
                // close, exactly like the single-instance server.
                let _ = write_json_response_conn(
                    &mut writer,
                    bad.status,
                    &error_body(&bad.message),
                    false,
                );
                return;
            }
            Ok(Ok(request)) => request,
        };

        state.requests.fetch_add(1, Ordering::Relaxed);
        served += 1;
        let keep = request.keep_alive()
            && served < state.max_requests_per_conn
            && !state.draining();

        let ok = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/shutdown") => {
                state.begin_drain();
                let body = JsonValue::object(vec![("draining", JsonValue::Bool(true))]).to_json();
                let _ = write_json_response_conn(&mut writer, 200, &body, false);
                return;
            }
            ("GET", "/healthz") => {
                let draining = state.draining();
                let body = JsonValue::object(vec![(
                    "status",
                    JsonValue::from(if draining { "draining" } else { "ok" }),
                )])
                .to_json();
                write_json_response_conn(&mut writer, 200, &body, keep).is_ok()
            }
            ("GET", "/metrics") => {
                let body = aggregate_metrics(state, upstreams);
                write_json_response_conn(&mut writer, 200, &body, keep).is_ok()
            }
            _ => {
                let shard = route_for(
                    &state.ring,
                    state.session_home,
                    &request.method,
                    &request.path,
                    &request.body,
                );
                match upstream(state, upstreams, shard).request_raw(
                    &request.method,
                    &request.path,
                    &request.body,
                ) {
                    Ok(resp) => {
                        state.routed[shard].fetch_add(1, Ordering::Relaxed);
                        write_json_response_conn(&mut writer, resp.status, &resp.body, keep).is_ok()
                    }
                    Err(_) => {
                        state.route_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = write_json_response_conn(
                            &mut writer,
                            503,
                            &error_body("shard unavailable"),
                            false,
                        );
                        false
                    }
                }
            }
        };
        if !ok || !keep {
            return;
        }
    }
}

/// The router's `GET /metrics` body: router counters plus every shard's
/// own snapshot (scraped over the worker's upstream connections), so one
/// request exposes the whole ensemble — including the per-shard
/// conservation check `requests == responses + aborted + idle_closed`.
fn aggregate_metrics(state: &RouterState, upstreams: &mut [Option<KeepAliveClient>]) -> String {
    let shards = state.shard_addrs.len();
    let mut instances = Vec::with_capacity(shards);
    for shard in 0..shards {
        let snapshot = match upstream(state, upstreams, shard).get("/metrics") {
            Ok(resp) if resp.status == 200 => {
                diffy_core::json::parse(&resp.body).unwrap_or(JsonValue::Null)
            }
            _ => JsonValue::Null,
        };
        instances.push(snapshot);
    }
    let routed: Vec<u64> = state.routed.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    JsonValue::object(vec![
        (
            "router",
            JsonValue::object(vec![
                ("requests_total", state.requests.load(Ordering::Relaxed).into()),
                ("draining", JsonValue::Bool(state.draining())),
            ]),
        ),
        (
            "shards",
            metrics::shards_to_json(
                &routed,
                state.route_errors.load(Ordering::Relaxed),
                instances,
            ),
        ),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_every_shard() {
        let ring = ShardRing::new(4);
        let again = ShardRing::new(4);
        let mut hits = [0usize; 4];
        for i in 0..10_000 {
            let key = format!("trace-key-{i}");
            let shard = ring.shard_of_key(&key);
            assert_eq!(shard, again.shard_of_key(&key), "placement must be deterministic");
            hits[shard] += 1;
        }
        for (shard, &n) in hits.iter().enumerate() {
            assert!(n > 0, "shard {shard} owns no keys");
            // 64 vnodes/shard keeps shares near uniform; a shard owning
            // less than a tenth or more than half of a uniform draw
            // would mean the ring is badly skewed.
            assert!((250..=5000).contains(&n), "shard {shard} owns {n}/10000 keys");
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_onto_the_new_shard() {
        let three = ShardRing::new(3);
        let four = ShardRing::new(4);
        let mut moved = 0usize;
        for i in 0..10_000 {
            let key = format!("trace-key-{i}");
            let before = three.shard_of_key(&key);
            let after = four.shard_of_key(&key);
            if before != after {
                assert_eq!(after, 3, "key {key} moved {before}->{after}, not onto the new shard");
                moved += 1;
            }
        }
        // Expected churn is ~1/4 of keys; anything near-total means the
        // partition is not consistent at all.
        assert!(moved < 5_000, "{moved}/10000 keys moved on a single-shard grow");
        assert!(moved > 0, "growing the ring moved nothing — new shard owns no keys");
    }

    #[test]
    fn trace_key_is_the_workload_identity_with_defaults_applied() {
        let explicit =
            br#"{"model":"ircnn","dataset":"kodak24","sample":0,"resolution":64,"seed":1}"#;
        let defaulted = br#"{"model":"ircnn","dataset":"kodak24"}"#;
        let key = trace_key(explicit).expect("explicit body must key");
        assert_eq!(Some(key.clone()), trace_key(defaulted), "defaults must normalize");
        // Request-only knobs don't affect placement.
        let with_deadline = br#"{"model":"ircnn","dataset":"kodak24","deadline_ms":100}"#;
        assert_eq!(Some(key), trace_key(with_deadline));
        // Different grid point, different key.
        let other = trace_key(br#"{"model":"ircnn","dataset":"kodak24","seed":7}"#).unwrap();
        assert_ne!(trace_key(defaulted).unwrap(), other);
        // Garbage carries no key.
        assert_eq!(trace_key(b"not json"), None);
        assert_eq!(trace_key(br#"{"model":"nope","dataset":"kodak24"}"#), None);
    }

    #[test]
    fn routing_pins_sessions_trace_and_spreads_evaluations() {
        let ring = ShardRing::new(4);
        let home = ring.shard_of_key("__session_home__");
        // All session traffic — create, frame, delete — lands on home.
        assert_eq!(route_for(&ring, home, "POST", "/session", b"{}"), home);
        assert_eq!(route_for(&ring, home, "POST", "/session/s-1/frame", b"{}"), home);
        assert_eq!(route_for(&ring, home, "DELETE", "/session/s-9", b""), home);
        // Trace capture reads shard 0's ring.
        assert_eq!(route_for(&ring, home, "GET", "/trace", b""), 0);
        // Evaluations route by trace key: same grid point, same shard,
        // regardless of request-only knobs.
        let a = route_for(
            &ring,
            home,
            "POST",
            "/evaluate",
            br#"{"model":"ircnn","dataset":"kodak24"}"#,
        );
        let b = route_for(
            &ring,
            home,
            "POST",
            "/evaluate",
            br#"{"model":"ircnn","dataset":"kodak24","deadline_ms":5000}"#,
        );
        assert_eq!(a, b);
        // The grid as a whole spreads across shards.
        let mut shards_hit = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let body = format!(r#"{{"model":"ircnn","dataset":"kodak24","seed":{seed}}}"#);
            shards_hit.insert(route_for(&ring, home, "POST", "/evaluate", body.as_bytes()));
        }
        assert!(shards_hit.len() >= 2, "evaluation keys all routed to one shard");
    }

    #[test]
    fn zero_shards_is_a_config_error_not_a_panic() {
        let cfg = ShardedConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 0,
            ..ShardedConfig::default()
        };
        match ShardedServer::bind(cfg) {
            Ok(_) => panic!("shards=0 must be rejected"),
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidInput),
        }
    }

    #[test]
    fn stream_queue_sheds_when_full_and_drains_after_close() {
        let q = StreamQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        let (s1, _) = listener.accept().unwrap();
        let (s2, _) = listener.accept().unwrap();
        assert!(q.try_push(s1).is_ok());
        assert!(q.try_push(s2).is_err(), "second push must be refused at capacity 1");
        q.close();
        assert!(q.pop().is_some(), "backlog drains after close");
        assert!(q.pop().is_none(), "then the queue reports closed");
    }
}
