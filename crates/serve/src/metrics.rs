//! Live service metrics: request/response counters, queue pressure, and
//! a lock-free log-bucketed latency histogram for p50/p99.
//!
//! Everything is atomics — recording never takes a lock, so the hot path
//! costs a handful of relaxed adds. The `/metrics` endpoint renders a
//! snapshot as JSON through `diffy_core::json`.

use crate::session::SessionStats;
use diffy_core::json::JsonValue;
use diffy_core::runner::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The response statuses the service emits, in reporting order. Anything
/// else lands in the `other` bucket so response totals always conserve.
pub const STATUSES: [u16; 8] = [200, 400, 404, 405, 413, 500, 503, 504];

/// Why a connection was closed without a response being written for its
/// pending request attempt. Together with the response counters these
/// make request accounting exact: every attempt the server admits ends
/// as a response, an abort, or an idle close — see
/// [`Metrics::requests_accounted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed (or stayed silent past the idle window) before
    /// sending a request — the normal end of a keep-alive connection.
    Idle,
    /// The connection died mid-request (reset, timeout after partial
    /// head, failed clone) — nothing could be answered.
    Aborted,
}

/// One stage of the `/evaluate` request pipeline, in pipeline order.
///
/// The per-stage histograms in `/metrics` and the serve trace spans use
/// these names (span taxonomy: DESIGN.md §5c); stage durations are
/// contiguous, so their sum tracks the end-to-end request latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accept → a worker dequeued the connection.
    QueueWait,
    /// Read + decode + validate the request.
    Parse,
    /// Materialize the trace bundle (cache-shared).
    Trace,
    /// Price the trace on the requested architecture.
    Evaluate,
    /// Serialize the result to JSON.
    Serialize,
    /// Write the response (including the lingering close).
    Write,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::QueueWait,
        Stage::Parse,
        Stage::Trace,
        Stage::Evaluate,
        Stage::Serialize,
        Stage::Write,
    ];

    /// The stage's name, shared by `/metrics` keys and trace spans.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Parse => "parse",
            Stage::Trace => "trace",
            Stage::Evaluate => "evaluate",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }
}

/// Histogram geometry: bucket `i` covers latencies up to
/// `BUCKET_BASE_MS * BUCKET_RATIO^i`; the last bucket is a catch-all.
const BUCKET_BASE_MS: f64 = 0.05;
const BUCKET_RATIO: f64 = 1.6;
const BUCKETS: usize = 48;

/// A concurrent log-bucketed latency histogram.
///
/// Quantiles are read from bucket upper bounds, so they are conservative
/// (a p99 of "≤ X ms") with ~60% bucket resolution — plenty for spotting
/// regressions; the bench client keeps exact client-side samples for the
/// committed numbers.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Total latency in microseconds, for the mean.
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let ms = us as f64 / 1e3;
        let mut idx = 0usize;
        let mut bound = BUCKET_BASE_MS;
        while ms > bound && idx + 1 < BUCKETS {
            bound *= BUCKET_RATIO;
            idx += 1;
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound (ms) of the bucket containing quantile `q` ∈ [0, 1],
    /// or 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut bound = BUCKET_BASE_MS;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // The catch-all has no honest upper bound; report the
                // max. Finite buckets clamp to it too, so a quantile
                // never reads above the largest observation.
                if i + 1 == BUCKETS {
                    return self.max_ms();
                }
                return bound.min(self.max_ms());
            }
            bound *= BUCKET_RATIO;
        }
        self.max_us.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Mean latency in ms, or 0 when empty.
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / 1e3 / n as f64
        }
    }

    /// Largest observation in ms.
    pub fn max_ms(&self) -> f64 {
        self.max_us.load(Ordering::Relaxed) as f64 / 1e3
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// All counters the service maintains.
pub struct Metrics {
    /// Request *attempts* admitted by the server: one per accepted
    /// connection plus one per keep-alive re-enqueue. Every attempt ends
    /// as exactly one response, abort, or idle close (conservation:
    /// [`Metrics::requests_accounted`]).
    pub requests_total: AtomicU64,
    /// TCP connections accepted (including ones later rejected with 503).
    pub connections_total: AtomicU64,
    /// Connections currently open and being serviced (gauge).
    pub connections_open: AtomicU64,
    /// Keep-alive re-enqueues: request attempts beyond a connection's
    /// first. `requests_total - keepalive_reuses_total` is the number of
    /// connections that carried at least one attempt.
    pub keepalive_reuses_total: AtomicU64,
    /// Largest number of responses served over a single connection.
    pub requests_per_conn_max: AtomicU64,
    /// Attempts that ended without a response because the connection
    /// died mid-request (reset, timeout after partial head, failed
    /// clone).
    pub aborted_total: AtomicU64,
    /// Attempts that ended without a response because the peer closed
    /// (or idled out) before sending a request — normal keep-alive end.
    pub idle_closed_total: AtomicU64,
    /// Items carried by `POST /evaluate/batch` requests (each batch is
    /// one request attempt; its items are counted here).
    pub batch_items_total: AtomicU64,
    /// Connections turned away because the admission queue was full.
    pub queue_rejected_total: AtomicU64,
    /// Times the event loop returned from its readiness wait (epoll
    /// wakeups). With N idle parked connections this grows with *events
    /// and ticks*, not with N — the sweep-free claim `tests/serve_epoll.rs`
    /// asserts.
    pub poller_wakeups_total: AtomicU64,
    /// Parked keep-alive connections currently owned by the event loop
    /// (gauge).
    pub poller_parked: AtomicU64,
    /// Parked connections moved to the admission queue because their
    /// next request's bytes arrived.
    pub poller_unparked_total: AtomicU64,
    /// Parked connections retired because their idle window expired with
    /// no request bytes (quiet closes — no attempt was pending).
    pub poller_expired_total: AtomicU64,
    /// Connections the parking lot refused (full or closed); retired
    /// quietly, before any next attempt existed.
    pub poller_park_refused_total: AtomicU64,
    /// Requests (or batch items) whose deadline expired before
    /// completion.
    pub deadline_expired_total: AtomicU64,
    /// Per-status response counts, aligned with [`STATUSES`]; the extra
    /// trailing slot counts statuses outside the table (`other`).
    responses: [AtomicU64; STATUSES.len() + 1],
    /// End-to-end `/evaluate` latency (accept → response written).
    pub latency: LatencyHistogram,
    /// Per-stage `/evaluate` durations, aligned with [`Stage::ALL`].
    stages: [LatencyHistogram; Stage::ALL.len()],
}

impl Metrics {
    /// Zeroed metrics.
    pub fn new() -> Self {
        Self {
            requests_total: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            keepalive_reuses_total: AtomicU64::new(0),
            requests_per_conn_max: AtomicU64::new(0),
            aborted_total: AtomicU64::new(0),
            idle_closed_total: AtomicU64::new(0),
            batch_items_total: AtomicU64::new(0),
            queue_rejected_total: AtomicU64::new(0),
            poller_wakeups_total: AtomicU64::new(0),
            poller_parked: AtomicU64::new(0),
            poller_unparked_total: AtomicU64::new(0),
            poller_expired_total: AtomicU64::new(0),
            poller_park_refused_total: AtomicU64::new(0),
            deadline_expired_total: AtomicU64::new(0),
            responses: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: LatencyHistogram::new(),
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Counts one connection close that ended a pending request attempt
    /// without a response, so conservation holds exactly.
    pub fn record_close(&self, reason: CloseReason) {
        match reason {
            CloseReason::Idle => &self.idle_closed_total,
            CloseReason::Aborted => &self.aborted_total,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Request attempts accounted for: every attempt ends as a response,
    /// an abort, or an idle close. When the server is quiesced (no
    /// connection in flight), this equals [`Metrics::requests_total`] —
    /// the conservation law `tests/serve_keepalive.rs` asserts.
    pub fn requests_accounted(&self) -> u64 {
        self.responses_total()
            + self.aborted_total.load(Ordering::Relaxed)
            + self.idle_closed_total.load(Ordering::Relaxed)
    }

    /// Counts one response with the given status. A status outside
    /// [`STATUSES`] is counted in the `other` bucket — never dropped, so
    /// the per-status counts always sum to the responses recorded.
    pub fn record_response(&self, status: u16) {
        let i = STATUSES.iter().position(|&s| s == status).unwrap_or(STATUSES.len());
        self.responses[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Responses sent with `status` so far (0 for untabled statuses —
    /// those are only visible in aggregate via [`Metrics::responses_other`]).
    pub fn responses_with(&self, status: u16) -> u64 {
        STATUSES
            .iter()
            .position(|&s| s == status)
            .map(|i| self.responses[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Responses whose status is outside [`STATUSES`].
    pub fn responses_other(&self) -> u64 {
        self.responses[STATUSES.len()].load(Ordering::Relaxed)
    }

    /// Total responses recorded, across every bucket including `other`.
    pub fn responses_total(&self) -> u64 {
        self.responses.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The duration histogram of one pipeline stage.
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage as usize]
    }

    /// Renders the `/metrics` snapshot. `queue_depth` is sampled by the
    /// caller (the queue owns that gauge); `cache` comes from the shared
    /// `SweepCache`; `sessions` from the shared `SessionStore`.
    pub fn to_json(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        cache: CacheStats,
        sessions: SessionStats,
    ) -> JsonValue {
        let mut responses: Vec<(String, JsonValue)> = STATUSES
            .iter()
            .enumerate()
            .map(|(i, s)| (s.to_string(), JsonValue::from(self.responses[i].load(Ordering::Relaxed))))
            .collect();
        responses.push(("other".to_string(), self.responses_other().into()));
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let h = self.stage(s);
                (
                    s.name().to_string(),
                    JsonValue::object(vec![
                        ("count", h.count().into()),
                        ("mean", JsonValue::from(h.mean_ms())),
                        ("p50", JsonValue::from(h.quantile_ms(0.50))),
                        ("p99", JsonValue::from(h.quantile_ms(0.99))),
                        ("max", JsonValue::from(h.max_ms())),
                    ]),
                )
            })
            .collect();
        JsonValue::object(vec![
            ("requests_total", self.requests_total.load(Ordering::Relaxed).into()),
            (
                "connections",
                JsonValue::object(vec![
                    ("total", self.connections_total.load(Ordering::Relaxed).into()),
                    ("open", self.connections_open.load(Ordering::Relaxed).into()),
                    ("keepalive_reuses", self.keepalive_reuses_total.load(Ordering::Relaxed).into()),
                    ("requests_per_conn_max", self.requests_per_conn_max.load(Ordering::Relaxed).into()),
                    ("aborted", self.aborted_total.load(Ordering::Relaxed).into()),
                    ("idle_closed", self.idle_closed_total.load(Ordering::Relaxed).into()),
                ]),
            ),
            ("batch_items_total", self.batch_items_total.load(Ordering::Relaxed).into()),
            ("queue_depth", queue_depth.into()),
            ("queue_capacity", queue_capacity.into()),
            ("queue_rejected_total", self.queue_rejected_total.load(Ordering::Relaxed).into()),
            (
                "poller",
                JsonValue::object(vec![
                    ("wakeups", self.poller_wakeups_total.load(Ordering::Relaxed).into()),
                    ("parked", self.poller_parked.load(Ordering::Relaxed).into()),
                    ("unparked", self.poller_unparked_total.load(Ordering::Relaxed).into()),
                    ("expired", self.poller_expired_total.load(Ordering::Relaxed).into()),
                    ("park_refused", self.poller_park_refused_total.load(Ordering::Relaxed).into()),
                ]),
            ),
            ("deadline_expired_total", self.deadline_expired_total.load(Ordering::Relaxed).into()),
            ("responses", JsonValue::Object(responses)),
            (
                "cache",
                JsonValue::object(vec![
                    ("hits", cache.hits.into()),
                    ("misses", cache.misses.into()),
                    ("shared", cache.shared.into()),
                    ("evictions", cache.evictions.into()),
                    ("traces", cache.cached_traces.into()),
                    ("weights", cache.cached_weights.into()),
                    ("term_planes", cache.cached_term_planes.into()),
                    ("traffic", cache.cached_traffic.into()),
                    ("video_frames", cache.cached_video_frames.into()),
                    ("video_cycles", cache.cached_video_cycles.into()),
                    ("results", cache.cached_results.into()),
                    (
                        "disk",
                        JsonValue::object(vec![
                            ("hits", cache.disk.hits.into()),
                            ("misses", cache.disk.misses.into()),
                            ("corrupt", cache.disk.corrupt.into()),
                            ("bytes", cache.disk.bytes.into()),
                        ]),
                    ),
                ]),
            ),
            (
                "sessions",
                JsonValue::object(vec![
                    ("open", sessions.open.into()),
                    ("capacity", sessions.capacity.into()),
                    ("created", sessions.created.into()),
                    ("closed", sessions.closed.into()),
                    ("expired", sessions.expired.into()),
                    ("evicted", sessions.evicted.into()),
                    ("hits", sessions.hits.into()),
                    ("misses", sessions.misses.into()),
                    ("frames", sessions.frames.into()),
                ]),
            ),
            (
                "latency_ms",
                JsonValue::object(vec![
                    ("count", self.latency.count().into()),
                    ("mean", JsonValue::from(self.latency.mean_ms())),
                    ("p50", JsonValue::from(self.latency.quantile_ms(0.50))),
                    ("p90", JsonValue::from(self.latency.quantile_ms(0.90))),
                    ("p99", JsonValue::from(self.latency.quantile_ms(0.99))),
                    ("max", JsonValue::from(self.latency.max_ms())),
                ]),
            ),
            ("stages_ms", JsonValue::Object(stages)),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a sharded deployment's `/metrics` body: the router's own
/// forwarding counters plus every instance's scraped snapshot, so one
/// scrape of the router shows the whole fleet. `routed[i]` counts
/// requests forwarded to shard `i`; `instances[i]` is shard `i`'s own
/// `/metrics` JSON (or `null` when a scrape failed — visible, not
/// silently dropped).
pub fn shards_to_json(routed: &[u64], route_errors: u64, instances: Vec<JsonValue>) -> JsonValue {
    JsonValue::object(vec![
        ("count", routed.len().into()),
        ("routed", JsonValue::Array(routed.iter().map(|&n| n.into()).collect())),
        ("route_errors", route_errors.into()),
        ("instances", JsonValue::Array(instances)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_ms(0.50);
        assert!((0.5..=2.0).contains(&p50), "p50 {p50} should bracket 1ms");
        let p99 = h.quantile_ms(0.99);
        assert!(p99 >= 100.0, "p99 {p99} must cover the 100ms outlier");
        assert!(p99 <= 200.0, "p99 {p99} should stay near the outlier");
        assert!((h.mean_ms() - 10.9).abs() < 0.5, "mean {}", h.mean_ms());
        assert!((h.max_ms() - 100.0).abs() < 0.5);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn extreme_latency_lands_in_catch_all() {
        let h = LatencyHistogram::new();
        // 1e9 ms is beyond the last finite bucket bound (~2e8 ms).
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(h.count(), 1);
        let p50 = h.quantile_ms(0.5);
        assert!((p50 - 1e9).abs() / 1e9 < 0.01, "catch-all reports the max, got {p50}");
    }

    #[test]
    fn metrics_snapshot_renders_all_sections() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.record_response(200);
        m.record_response(200);
        m.record_response(503);
        m.latency.record(Duration::from_millis(2));
        let sessions = SessionStats {
            open: 1,
            capacity: 4,
            created: 3,
            closed: 1,
            expired: 1,
            evicted: 0,
            hits: 7,
            misses: 2,
            frames: 9,
        };
        let cache_stats = CacheStats {
            hits: 5,
            misses: 2,
            shared: 1,
            disk: diffy_core::artifact::DiskStats { hits: 4, misses: 3, corrupt: 1, bytes: 2048 },
            ..CacheStats::default()
        };
        let v = m.to_json(1, 8, cache_stats, sessions);
        assert_eq!(v.get("requests_total").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("queue_depth").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("responses").unwrap().get("200").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("responses").unwrap().get("503").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("cache").unwrap().get("hits").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("cache").unwrap().get("shared").unwrap().as_u64(), Some(1));
        let disk = v.get("cache").unwrap().get("disk").unwrap();
        assert_eq!(disk.get("hits").unwrap().as_u64(), Some(4));
        assert_eq!(disk.get("misses").unwrap().as_u64(), Some(3));
        assert_eq!(disk.get("corrupt").unwrap().as_u64(), Some(1));
        assert_eq!(disk.get("bytes").unwrap().as_u64(), Some(2048));
        assert_eq!(v.get("latency_ms").unwrap().get("count").unwrap().as_u64(), Some(1));
        let sess = v.get("sessions").unwrap();
        assert_eq!(sess.get("open").unwrap().as_u64(), Some(1));
        assert_eq!(sess.get("created").unwrap().as_u64(), Some(3));
        assert_eq!(sess.get("frames").unwrap().as_u64(), Some(9));
        assert!(sessions.conserved(), "created == closed + expired + evicted + open");
        assert_eq!(m.responses_with(200), 2);
        assert_eq!(m.responses_with(504), 0);
        // The snapshot itself must be valid JSON.
        assert!(diffy_core::json::parse(&v.to_json()).is_ok());
    }

    #[test]
    fn unknown_statuses_land_in_other_and_totals_conserve() {
        let m = Metrics::new();
        // A mix of tabled and untabled statuses; every recording must be
        // accounted for somewhere.
        let recorded = [200u16, 418, 200, 599, 503, 302, 504];
        for s in recorded {
            m.record_response(s);
        }
        assert_eq!(m.responses_with(200), 2);
        assert_eq!(m.responses_with(503), 1);
        assert_eq!(m.responses_other(), 3, "418/599/302 must not vanish");
        assert_eq!(m.responses_total(), recorded.len() as u64, "conservation");
        let v = m.to_json(0, 8, CacheStats::default(), SessionStats::default());
        assert_eq!(v.get("responses").unwrap().get("other").unwrap().as_u64(), Some(3));
        // Conservation holds in the rendered snapshot too.
        let rendered: u64 = STATUSES
            .iter()
            .map(|s| v.get("responses").unwrap().get(&s.to_string()).unwrap().as_u64().unwrap())
            .sum::<u64>()
            + v.get("responses").unwrap().get("other").unwrap().as_u64().unwrap();
        assert_eq!(rendered, recorded.len() as u64);
    }

    #[test]
    fn connection_counters_render_and_conserve() {
        let m = Metrics::new();
        // Three attempts: one answered, one aborted mid-read, one idle
        // keep-alive close. Conservation must hold exactly.
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.connections_total.fetch_add(2, Ordering::Relaxed);
        m.connections_open.fetch_add(2, Ordering::Relaxed);
        m.keepalive_reuses_total.fetch_add(1, Ordering::Relaxed);
        m.record_response(200);
        m.record_close(CloseReason::Aborted);
        assert_ne!(m.requests_accounted(), m.requests_total.load(Ordering::Relaxed));
        m.record_close(CloseReason::Idle);
        assert_eq!(m.requests_accounted(), m.requests_total.load(Ordering::Relaxed));
        m.requests_per_conn_max.fetch_max(2, Ordering::Relaxed);
        m.connections_open.fetch_sub(2, Ordering::Relaxed);

        let v = m.to_json(0, 8, CacheStats::default(), SessionStats::default());
        let conns = v.get("connections").unwrap();
        assert_eq!(conns.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(conns.get("open").unwrap().as_u64(), Some(0));
        assert_eq!(conns.get("keepalive_reuses").unwrap().as_u64(), Some(1));
        assert_eq!(conns.get("requests_per_conn_max").unwrap().as_u64(), Some(2));
        assert_eq!(conns.get("aborted").unwrap().as_u64(), Some(1));
        assert_eq!(conns.get("idle_closed").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("batch_items_total").unwrap().as_u64(), Some(0));
        assert!(diffy_core::json::parse(&v.to_json()).is_ok());
    }

    #[test]
    fn poller_block_renders_event_loop_counters() {
        let m = Metrics::new();
        m.poller_wakeups_total.fetch_add(12, Ordering::Relaxed);
        m.poller_parked.store(3, Ordering::Relaxed);
        m.poller_unparked_total.fetch_add(2, Ordering::Relaxed);
        m.poller_expired_total.fetch_add(1, Ordering::Relaxed);
        let v = m.to_json(0, 8, CacheStats::default(), SessionStats::default());
        let p = v.get("poller").unwrap();
        assert_eq!(p.get("wakeups").unwrap().as_u64(), Some(12));
        assert_eq!(p.get("parked").unwrap().as_u64(), Some(3));
        assert_eq!(p.get("unparked").unwrap().as_u64(), Some(2));
        assert_eq!(p.get("expired").unwrap().as_u64(), Some(1));
        assert_eq!(p.get("park_refused").unwrap().as_u64(), Some(0));
        assert!(diffy_core::json::parse(&v.to_json()).is_ok());
    }

    #[test]
    fn shards_block_carries_per_shard_routing_and_snapshots() {
        let inst = Metrics::new().to_json(0, 8, CacheStats::default(), SessionStats::default());
        let v = shards_to_json(&[5, 3], 1, vec![inst, JsonValue::Null]);
        assert_eq!(v.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("route_errors").unwrap().as_u64(), Some(1));
        let routed = v.get("routed").unwrap().as_array().unwrap();
        assert_eq!(routed[0].as_u64(), Some(5));
        assert_eq!(routed[1].as_u64(), Some(3));
        let instances = v.get("instances").unwrap().as_array().unwrap();
        assert!(instances[0].get("poller").is_some());
        assert!(matches!(instances[1], JsonValue::Null));
        assert!(diffy_core::json::parse(&v.to_json()).is_ok());
    }

    #[test]
    fn stage_histograms_record_and_render() {
        let m = Metrics::new();
        m.stage(Stage::QueueWait).record(Duration::from_millis(1));
        m.stage(Stage::Evaluate).record(Duration::from_millis(40));
        m.stage(Stage::Evaluate).record(Duration::from_millis(60));
        assert_eq!(m.stage(Stage::Evaluate).count(), 2);
        assert_eq!(m.stage(Stage::Parse).count(), 0);
        let v = m.to_json(0, 8, CacheStats::default(), SessionStats::default());
        let stages = v.get("stages_ms").unwrap();
        for s in Stage::ALL {
            assert!(stages.get(s.name()).is_some(), "stage {} rendered", s.name());
        }
        assert_eq!(stages.get("evaluate").unwrap().get("count").unwrap().as_u64(), Some(2));
        let mean = stages.get("evaluate").unwrap().get("mean").unwrap().as_f64().unwrap();
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
        assert!(diffy_core::json::parse(&v.to_json()).is_ok());
    }
}
