//! A minimal blocking HTTP/1.1 client for the service's one-shot
//! protocol: one request, one `Connection: close` response.
//!
//! Shared by the end-to-end tests, the bench load generator, and the CI
//! smoke driver, so every consumer speaks to the server the same way.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Issues one request and reads the full response. `body` of `None`
/// sends no payload (GET); `Some` posts it with a `Content-Length`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;

    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

fn parse_response(raw: &str) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| bad("no header/body split"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    // "HTTP/1.1 200 OK"
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    // Connection: close — the body is everything after the head. Honor
    // Content-Length if present to strip trailing bytes defensively.
    let len = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok());
    let body = match len {
        Some(n) if n <= body.len() => &body[..n],
        _ => body,
    };
    Ok(HttpResponse { status, body: body.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let r = parse_response(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 16\r\n\r\n{\"error\":\"busy\"}",
        )
        .unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, "{\"error\":\"busy\"}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
