//! A minimal blocking HTTP/1.1 client for the service's protocol —
//! one-shot (`Connection: close`) helpers plus a persistent
//! [`KeepAliveClient`] that frames responses by `Content-Length` so many
//! requests can share one connection.
//!
//! Shared by the end-to-end tests, the bench load generator, and the CI
//! smoke driver, so every consumer speaks to the server the same way.

use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Hard cap on a response head read by [`KeepAliveClient`]; the server's
/// responses are a handful of short headers.
const MAX_RESPONSE_HEAD: usize = 16 * 1024;

/// A response from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Issues one request and reads the full response. `body` of `None`
/// sends no payload (GET); `Some` posts it with a `Content-Length`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    let mut stream = stream;

    // One write for the whole request: `write!` straight at a TcpStream
    // emits one syscall per format fragment, and those small segmented
    // writes stall on Nagle + delayed-ACK.
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

/// Splits a raw close-framed response into status and body.
///
/// All slicing is on *bytes*: `Content-Length` is a byte count, and
/// slicing the decoded string at that offset panics when it lands inside
/// a multi-byte UTF-8 sequence (regression:
/// `content_length_mid_utf8_boundary_is_not_a_panic`).
fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let split = find_blank_line(raw).ok_or_else(|| bad("no header/body split"))?;
    let (head, body) = (&raw[..split], &raw[split + 4..]);
    let head = String::from_utf8_lossy(head);
    let status = parse_status_line(&head).ok_or_else(|| bad("malformed status line"))?;
    // Connection: close — the body is everything after the head. Honor
    // Content-Length if present to strip trailing bytes defensively.
    let body = match content_length(&head) {
        Some(n) if n <= body.len() => &body[..n],
        _ => body,
    };
    Ok(HttpResponse { status, body: String::from_utf8_lossy(body).into_owned() })
}

/// Byte offset of the first `\r\n\r\n`, if any.
fn find_blank_line(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Status code out of `"HTTP/1.1 200 OK"`.
fn parse_status_line(head: &str) -> Option<u16> {
    head.lines().next()?.split(' ').nth(1)?.parse::<u16>().ok()
}

/// The head's `Content-Length`, if present and well-formed.
fn content_length(head: &str) -> Option<usize> {
    head.lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
}

/// Whether the head carries `Connection: close`.
fn says_close(head: &str) -> bool {
    head.lines()
        .filter_map(|l| l.split_once(':'))
        .filter(|(k, _)| k.eq_ignore_ascii_case("connection"))
        .any(|(_, v)| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
}

/// A persistent HTTP/1.1 connection to the server: requests reuse one
/// socket, and responses are framed by `Content-Length` instead of EOF.
///
/// The server may close the connection at any time (idle timeout,
/// per-connection request cap, drain); the client transparently
/// reconnects and retries once when a *reused* connection fails before a
/// response arrives. (Evaluation is pure, so a replayed request returns
/// the identical answer.)
pub struct KeepAliveClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
    /// Requests answered over the current socket (diagnostic).
    on_conn: u64,
    /// Sockets opened over this client's lifetime (diagnostic).
    connects: u64,
}

impl KeepAliveClient {
    /// A client for `addr`; connects lazily on the first request.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Self { addr, timeout, conn: None, on_conn: 0, connects: 0 }
    }

    /// `POST path` with a JSON body over the persistent connection.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// `GET path` over the persistent connection.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// Sockets this client has opened so far.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Requests answered on the current socket.
    pub fn requests_on_conn(&self) -> u64 {
        self.on_conn
    }

    /// Issues one request, reusing the open connection when possible.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        self.request_raw(method, path, body.unwrap_or("").as_bytes())
    }

    /// Issues one request whose body is raw bytes. The shard router
    /// forwards downstream request bodies through this path verbatim, so
    /// a byte-for-byte relay never depends on the body being UTF-8.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        let reused = self.conn.is_some();
        match self.attempt(method, path, body) {
            // A reused socket may have been closed under us (idle
            // timeout, request cap, drain) — retry once on a fresh one.
            Err(_) if reused => {
                self.conn = None;
                self.attempt(method, path, body)
            }
            outcome => outcome,
        }
    }

    fn attempt(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            let _ = stream.set_nodelay(true);
            self.conn = Some(BufReader::new(stream));
            self.connects += 1;
            self.on_conn = 0;
        }
        let outcome = self.exchange(method, path, body);
        match &outcome {
            Ok((_, close)) => {
                self.on_conn += 1;
                if *close {
                    self.conn = None;
                }
            }
            Err(_) => self.conn = None,
        }
        outcome.map(|(resp, _)| resp)
    }

    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<(HttpResponse, bool)> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let reader = self.conn.as_mut().expect("connected");
        let addr = self.addr;
        {
            // Single write for head + body: segmented writes on a warm
            // connection stall on Nagle + delayed-ACK.
            let head = format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                body.len()
            );
            let mut request = Vec::with_capacity(head.len() + body.len());
            request.extend_from_slice(head.as_bytes());
            request.extend_from_slice(body);
            let stream = reader.get_mut();
            stream.write_all(&request)?;
            stream.flush()?;
        }

        // Head: bytes up to the blank line (reads are buffered).
        let mut head = Vec::with_capacity(256);
        let mut byte = [0u8; 1];
        loop {
            if reader.read(&mut byte)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a response",
                ));
            }
            head.push(byte[0]);
            if head.ends_with(b"\r\n\r\n") {
                break;
            }
            if head.len() > MAX_RESPONSE_HEAD {
                return Err(bad("response head too large"));
            }
        }
        let head = String::from_utf8_lossy(&head[..head.len() - 4]).into_owned();
        let status = parse_status_line(&head).ok_or_else(|| bad("malformed status line"))?;
        // Keep-alive framing *requires* an exact length.
        let len = content_length(&head).ok_or_else(|| bad("response without Content-Length"))?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        let close = says_close(&head);
        Ok((
            HttpResponse { status, body: String::from_utf8_lossy(&body).into_owned() },
            close,
        ))
    }
}

/// A streaming-session handle over one persistent connection: `create`
/// opens a session (`POST /session`) and remembers the returned id, and
/// `frame`/`close` address it (`POST /session/{id}/frame`,
/// `DELETE /session/{id}`) without the caller threading the id around.
///
/// Frames within one session are strictly ordered, so they ride a single
/// [`KeepAliveClient`]; distinct sessions get distinct `SessionClient`s.
pub struct SessionClient {
    http: KeepAliveClient,
    id: Option<String>,
}

impl SessionClient {
    /// A session client for `addr`; connects lazily on the first request.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Self { http: KeepAliveClient::new(addr, timeout), id: None }
    }

    /// Opens a session with the given JSON body and remembers its id on
    /// success. Returns the server's response either way — a 4xx leaves
    /// the client without a session.
    pub fn create(&mut self, body: &str) -> io::Result<HttpResponse> {
        let resp = self.http.post("/session", body)?;
        if resp.status == 200 {
            self.id = diffy_core::json::parse(&resp.body)
                .ok()
                .and_then(|v| v.get("session").and_then(|s| s.as_str().map(String::from)));
        }
        Ok(resp)
    }

    /// The open session's id, if `create` has succeeded.
    pub fn id(&self) -> Option<&str> {
        self.id.as_deref()
    }

    /// Submits the next frame of the open session.
    pub fn frame(&mut self, body: &str) -> io::Result<HttpResponse> {
        let id = self.id.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no open session: call create first")
        })?;
        self.http.post(&format!("/session/{id}/frame"), body)
    }

    /// Closes the open session and forgets its id.
    pub fn close(&mut self) -> io::Result<HttpResponse> {
        let id = self.id.take().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no open session: call create first")
        })?;
        self.http.request("DELETE", &format!("/session/{id}"), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let r = parse_response(
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 16\r\n\r\n{\"error\":\"busy\"}",
        )
        .unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.body, "{\"error\":\"busy\"}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn content_length_mid_utf8_boundary_is_not_a_panic() {
        // Content-Length points one byte into a two-byte UTF-8 sequence
        // ("é" = 0xC3 0xA9). Slicing the decoded string there panicked;
        // byte slicing + lossy conversion must yield a replacement char.
        let r = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nab\xC3\xA9").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "ab\u{FFFD}");
        // And a length that covers the full sequence round-trips intact.
        let r = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nab\xC3\xA9").unwrap();
        assert_eq!(r.body, "abé");
    }

    #[test]
    fn session_client_requires_create_before_frame_or_close() {
        // No connection is ever made — the guard fires before any I/O.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut c = SessionClient::new(addr, Duration::from_millis(10));
        assert!(c.id().is_none());
        assert_eq!(c.frame("{}").unwrap_err().kind(), io::ErrorKind::InvalidInput);
        assert_eq!(c.close().unwrap_err().kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn close_token_is_detected_in_connection_lists() {
        assert!(says_close("HTTP/1.1 200 OK\r\nConnection: close"));
        assert!(says_close("HTTP/1.1 200 OK\r\nConnection: Keep-Alive, Close"));
        assert!(!says_close("HTTP/1.1 200 OK\r\nConnection: keep-alive"));
        assert!(!says_close("HTTP/1.1 200 OK\r\nContent-Length: 2"));
    }
}
