//! Closed-loop load generation against a running server.
//!
//! `closed_loop` runs `concurrency` clients, each issuing its requests
//! back-to-back (a new request the moment the previous response lands —
//! the classic closed-loop model, so offered load scales with measured
//! throughput). Latencies are exact client-side samples; percentiles are
//! computed by sorting, not from histogram buckets, because these are the
//! numbers that get committed to `BENCH_serve.json`.

use crate::client::post;
use diffy_core::parallel::{run_jobs, Jobs};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Results of one closed-loop run at a fixed concurrency.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients.
    pub concurrency: usize,
    /// Requests answered 200.
    pub ok: u64,
    /// Requests answered anything else, or failed at the socket level.
    pub errors: u64,
    /// Wall-clock duration of the whole run, in seconds.
    pub wall_s: f64,
    /// Successful requests per second (closed-loop throughput).
    pub throughput_rps: f64,
    /// Mean latency over successful requests, ms.
    pub mean_ms: f64,
    /// Latency percentiles over successful requests, ms (nearest-rank).
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Slowest successful request, ms.
    pub max_ms: f64,
}

/// Nearest-rank percentile of a sorted sample, in the sample's units.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs `concurrency` closed-loop clients, each posting `body` to
/// `/evaluate` `requests_per_client` times, and aggregates the outcome.
///
/// Client fan-out rides the same deterministic pool the sweeps use
/// (`run_jobs`); each client is self-contained, so the report is a pure
/// aggregation over per-request samples.
pub fn closed_loop(
    addr: SocketAddr,
    body: &str,
    concurrency: usize,
    requests_per_client: usize,
    timeout: Duration,
) -> LoadReport {
    assert!(concurrency >= 1 && requests_per_client >= 1);
    let started = Instant::now();
    let clients: Vec<_> = (0..concurrency)
        .map(|_| {
            move || {
                let mut latencies = Vec::with_capacity(requests_per_client);
                let mut errors = 0u64;
                for _ in 0..requests_per_client {
                    let t0 = Instant::now();
                    match post(addr, "/evaluate", body, timeout) {
                        Ok(resp) if resp.status == 200 => {
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        _ => errors += 1,
                    }
                }
                (latencies, errors)
            }
        })
        .collect();
    let outcomes = run_jobs(clients, Jobs::new(concurrency));
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut errors = 0u64;
    for (l, e) in outcomes {
        latencies.extend(l);
        errors += e;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let ok = latencies.len() as u64;
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    LoadReport {
        concurrency,
        ok,
        errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        mean_ms,
        p50_ms: percentile(&latencies, 0.50),
        p90_ms: percentile(&latencies, 0.90),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
