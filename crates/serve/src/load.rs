//! Closed-loop load generation against a running server.
//!
//! `closed_loop` runs `concurrency` clients, each issuing its requests
//! back-to-back (a new request the moment the previous response lands —
//! the classic closed-loop model, so offered load scales with measured
//! throughput). Latencies are exact client-side samples; percentiles are
//! computed by sorting, not from histogram buckets, because these are the
//! numbers that get committed to `BENCH_serve.json`.

use crate::client::{post, KeepAliveClient, SessionClient};
use diffy_core::json::parse as parse_json;
use diffy_core::parallel::{run_jobs, Jobs};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// How each closed-loop client talks to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One connection per request (`Connection: close`) — PR 3's model.
    OneShot,
    /// One persistent connection per client; requests reuse it.
    KeepAlive,
    /// One persistent connection per client, posting
    /// `POST /evaluate/batch` with `size` identical items per request.
    /// Throughput still counts *evaluations* per second; the latency
    /// samples are per *batch* (each covers `size` evaluations).
    Batch(usize),
    /// One streaming session per client: the load body is the `POST
    /// /session` request (its `frames` horizon must cover
    /// `requests_per_client`), then each "request" is one `POST
    /// /session/{id}/frame`, closed-loop, and the session is deleted at
    /// the end. Latency samples cover the frame posts only — the
    /// create/close bookkeeping is not part of the measured stream —
    /// so `throughput_rps` reads as frames per second.
    Streaming,
}

/// Results of one closed-loop run at a fixed concurrency.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients.
    pub concurrency: usize,
    /// Evaluations answered 200 (batch items count individually).
    pub ok: u64,
    /// Evaluations answered anything else, or failed at the socket level.
    pub errors: u64,
    /// Wall-clock duration of the whole run, in seconds.
    pub wall_s: f64,
    /// Successful evaluations per second (closed-loop throughput).
    pub throughput_rps: f64,
    /// Mean latency over successful requests, ms.
    pub mean_ms: f64,
    /// Latency percentiles over successful requests, ms (nearest-rank).
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Slowest successful request, ms.
    pub max_ms: f64,
}

/// Nearest-rank percentile of a sorted sample, in the sample's units.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs `concurrency` closed-loop clients, each posting `body` to
/// `/evaluate` `requests_per_client` times, and aggregates the outcome.
///
/// Client fan-out rides the same deterministic pool the sweeps use
/// (`run_jobs`); each client is self-contained, so the report is a pure
/// aggregation over per-request samples.
pub fn closed_loop(
    addr: SocketAddr,
    body: &str,
    concurrency: usize,
    requests_per_client: usize,
    timeout: Duration,
) -> LoadReport {
    closed_loop_mode(addr, body, concurrency, requests_per_client, timeout, LoadMode::OneShot)
}

/// [`closed_loop`] generalized over the connection/batching strategy.
/// `requests_per_client` always counts *evaluations*, so reports are
/// comparable across modes; [`LoadMode::Batch`] groups them into
/// ceil(requests/size) batch posts (last batch possibly short).
pub fn closed_loop_mode(
    addr: SocketAddr,
    body: &str,
    concurrency: usize,
    requests_per_client: usize,
    timeout: Duration,
    mode: LoadMode,
) -> LoadReport {
    closed_loop_bodies(addr, &[body], concurrency, requests_per_client, timeout, mode)
}

/// [`closed_loop_mode`] with a body *mix*: client `i` drives
/// `bodies[i % bodies.len()]` for its whole allotment. Against a sharded
/// ensemble this is the shard-aware load shape — distinct trace keys
/// hash to distinct partitions, so the mix exercises the router's
/// fan-out instead of funneling every client onto one shard's cache.
pub fn closed_loop_bodies(
    addr: SocketAddr,
    bodies: &[&str],
    concurrency: usize,
    requests_per_client: usize,
    timeout: Duration,
    mode: LoadMode,
) -> LoadReport {
    assert!(concurrency >= 1 && requests_per_client >= 1);
    assert!(!bodies.is_empty(), "need at least one load body");
    if let LoadMode::Batch(size) = mode {
        assert!(size >= 1, "batch size must be at least 1");
    }
    let started = Instant::now();
    let clients: Vec<_> = (0..concurrency)
        .map(|i| {
            let body = bodies[i % bodies.len()];
            move || run_client(addr, body, requests_per_client, timeout, mode)
        })
        .collect();
    let outcomes = run_jobs(clients, Jobs::new(concurrency));
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut ok = 0u64;
    let mut errors = 0u64;
    for (l, k, e) in outcomes {
        latencies.extend(l);
        ok += k;
        errors += e;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    LoadReport {
        concurrency,
        ok,
        errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        mean_ms,
        p50_ms: percentile(&latencies, 0.50),
        p90_ms: percentile(&latencies, 0.90),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
    }
}

/// One closed-loop client: issues its evaluations in `mode`, returning
/// (latency samples in ms, ok-evaluation count, failed-evaluation
/// count). In batch mode there are fewer latency samples than
/// evaluations — each sample covers one whole batch.
fn run_client(
    addr: SocketAddr,
    body: &str,
    requests: usize,
    timeout: Duration,
    mode: LoadMode,
) -> (Vec<f64>, u64, u64) {
    let mut latencies = Vec::with_capacity(requests);
    let mut ok = 0u64;
    let mut errors = 0u64;
    match mode {
        LoadMode::OneShot => {
            for _ in 0..requests {
                let t0 = Instant::now();
                match post(addr, "/evaluate", body, timeout) {
                    Ok(resp) if resp.status == 200 => {
                        ok += 1;
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    _ => errors += 1,
                }
            }
        }
        LoadMode::KeepAlive => {
            let mut client = KeepAliveClient::new(addr, timeout);
            for _ in 0..requests {
                let t0 = Instant::now();
                match client.post("/evaluate", body) {
                    Ok(resp) if resp.status == 200 => {
                        ok += 1;
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    _ => errors += 1,
                }
            }
        }
        LoadMode::Streaming => {
            let mut client = SessionClient::new(addr, timeout);
            match client.create(body) {
                Ok(resp) if resp.status == 200 && client.id().is_some() => {}
                // No session, no frames: the whole allotment failed.
                _ => return (latencies, ok, requests as u64),
            }
            for _ in 0..requests {
                let t0 = Instant::now();
                match client.frame("") {
                    Ok(resp) if resp.status == 200 => {
                        ok += 1;
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    _ => errors += 1,
                }
            }
            let _ = client.close();
        }
        LoadMode::Batch(size) => {
            let mut client = KeepAliveClient::new(addr, timeout);
            let mut remaining = requests;
            while remaining > 0 {
                let n = remaining.min(size) as u64;
                remaining -= n as usize;
                let batch = batch_body(body, n as usize);
                let t0 = Instant::now();
                match client.post("/evaluate/batch", &batch) {
                    Ok(resp) if resp.status == 200 => {
                        let failed = batch_errors(&resp.body).unwrap_or(n).min(n);
                        errors += failed;
                        ok += n - failed;
                        if failed < n {
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    _ => errors += n,
                }
            }
        }
    }
    (latencies, ok, errors)
}

/// A `POST /evaluate/batch` body: `body` as the shared defaults, with
/// `n` empty items inheriting everything from them.
pub fn batch_body(defaults: &str, n: usize) -> String {
    let mut out = String::with_capacity(defaults.len() + 16 + 3 * n);
    out.push_str("{\"defaults\":");
    out.push_str(defaults);
    out.push_str(",\"items\":[");
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{}");
    }
    out.push_str("]}");
    out
}

/// The `errors` counter out of a batch response body.
fn batch_errors(body: &str) -> Option<u64> {
    parse_json(body).ok()?.get("errors")?.as_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_body_wraps_defaults_with_empty_items() {
        assert_eq!(
            batch_body("{\"model\":\"lenet\"}", 3),
            "{\"defaults\":{\"model\":\"lenet\"},\"items\":[{},{},{}]}"
        );
        assert_eq!(batch_body("{}", 1), "{\"defaults\":{},\"items\":[{}]}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
