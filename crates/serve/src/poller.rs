//! Readiness notification for the serve core: a thin `epoll` wrapper.
//!
//! The server's event loop owns the listener plus every parked
//! keep-alive socket, and must learn *which* of them became readable
//! without touching each one per tick — the PR 5 parker's per-socket
//! `peek` sweep cost one syscall per parked connection every 5 ms, which
//! is exactly the O(idle) tax `epoll` exists to remove. std has no
//! readiness API, and the workspace takes no external crates, so the
//! Linux implementation declares the four syscalls it needs via
//! `extern "C"` — the same no-new-deps discipline as the server's
//! `signal` handler (std already links libc on unix).
//!
//! # Model
//!
//! One [`Poller`] holds an epoll instance plus an `eventfd` used as a
//! wake channel. Sockets are registered level-triggered for readability
//! (`EPOLLIN | EPOLLRDHUP`) under a caller-chosen `u64` token;
//! [`Poller::wait`] blocks up to a timeout and returns the tokens that
//! are ready. Level-triggering keeps the contract simple: a ready
//! socket is re-reported until the caller consumes its bytes or
//! deregisters it, so a spurious or stale token is never a lost event.
//! [`Poller::wake`] is safe to call from any thread; the wake event is
//! consumed inside `wait` and never surfaces as a token.
//!
//! # Portability
//!
//! On non-Linux targets a fallback with the same API polls registered
//! sockets with non-blocking `peek`s on a short tick — the old parker's
//! cadence, kept only so the crate still builds and serves elsewhere;
//! the production target (and CI) is Linux.

/// Token reserved by the server's event loop for its listener.
pub const LISTENER_TOKEN: u64 = 0;

/// First token available for parked connections (tokens below are
/// reserved for the listener and future fixed sources).
pub const FIRST_CONN_TOKEN: u64 = 2;

/// Internal token for the wake eventfd; never returned from `wait`.
const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
mod sys {
    use super::WAKE_TOKEN;
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    // Values from the Linux UAPI headers; stable ABI, identical across
    // architectures the workspace targets.
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLLIN: u32 = 0x001;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EINTR: i32 = 4;

    /// `struct epoll_event`. Packed on x86 (the kernel ABI there),
    /// naturally aligned elsewhere (e.g. aarch64) — matching libc.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// `struct pollfd` for the one-shot readability wait.
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN_FLAG: i16 = 0x001;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    fn last_error() -> io::Error {
        io::Error::last_os_error()
    }

    /// Waits up to `timeout` for `stream` to become readable (data, EOF
    /// or error — anything a read would not block on). Returns `false`
    /// on a clean timeout.
    ///
    /// This exists for the worker-side park grace: a blocking `peek`
    /// under `SO_RCVTIMEO` pays kernel timer-tick rounding (a 2 ms
    /// timeout really blocks ~8 ms at HZ=250), which rate-limits how
    /// fast one worker can park idle connections. `poll(2)` timeouts use
    /// high-resolution timers and honor the grace as written.
    pub fn wait_readable(stream: &TcpStream, timeout: Duration) -> io::Result<bool> {
        let mut pfd = PollFd { fd: stream.as_raw_fd(), events: POLLIN_FLAG, revents: 0 };
        let ms = timeout.as_millis().clamp(1, i32::MAX as u128) as i32;
        loop {
            let n = unsafe { poll(&mut pfd, 1, ms) };
            if n < 0 {
                let e = last_error();
                if e.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(e);
            }
            // Any revents bit (POLLIN, POLLHUP, POLLERR, ...) means a
            // read will not block; the caller's peek disambiguates.
            return Ok(n > 0);
        }
    }

    /// The Linux poller: an epoll fd plus an eventfd wake channel.
    pub struct Poller {
        epfd: i32,
        wakefd: i32,
        /// Registered-socket gauge (diagnostic; also sizes event batches).
        registered: AtomicU64,
    }

    // The fds are plain ints used through &self with thread-safe
    // syscalls (epoll is explicitly multi-thread safe).
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// A fresh epoll instance with its wake channel registered.
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_error());
            }
            let wakefd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if wakefd < 0 {
                let e = last_error();
                unsafe { close(epfd) };
                return Err(e);
            }
            let poller = Poller { epfd, wakefd, registered: AtomicU64::new(0) };
            poller.add_fd(wakefd, WAKE_TOKEN)?;
            Ok(poller)
        }

        fn add_fd(&self, fd: i32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events: EPOLLIN | EPOLLRDHUP, data: token };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
                return Err(last_error());
            }
            Ok(())
        }

        fn del_fd(&self, fd: i32) -> io::Result<()> {
            // Pre-2.6.9 kernels required a non-null event for DEL; pass
            // one unconditionally.
            let mut ev = EpollEvent { events: 0, data: 0 };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(last_error());
            }
            Ok(())
        }

        /// Watches a listener for pending accepts under `token`.
        /// Listeners don't count toward the registered-socket gauge.
        pub fn register_listener(&self, listener: &TcpListener, token: u64) -> io::Result<()> {
            self.add_fd(listener.as_raw_fd(), token)
        }

        /// Watches a connection for readability (data or peer close)
        /// under `token`.
        pub fn register(&self, stream: &TcpStream, token: u64) -> io::Result<()> {
            self.add_fd(stream.as_raw_fd(), token)?;
            self.registered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        /// Stops watching a connection registered with [`Poller::register`].
        pub fn deregister(&self, stream: &TcpStream) -> io::Result<()> {
            self.del_fd(stream.as_raw_fd())?;
            self.registered.fetch_sub(1, Ordering::Relaxed);
            Ok(())
        }

        /// Currently watched connection count (diagnostic gauge).
        pub fn registered(&self) -> u64 {
            self.registered.load(Ordering::Relaxed)
        }

        /// Wakes a concurrent [`Poller::wait`]. Any-thread safe; a full
        /// eventfd counter (wake already pending) is success, not error.
        pub fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            unsafe { write(self.wakefd, one.as_ptr(), one.len()) };
        }

        fn drain_wake(&self) {
            let mut buf = [0u8; 8];
            // One read resets a (non-semaphore) eventfd counter to zero.
            unsafe { read(self.wakefd, buf.as_mut_ptr(), buf.len()) };
        }

        /// Blocks until at least one registered source is readable, a
        /// wake arrives, or `timeout` passes; appends ready tokens to
        /// `out` (cleared first). Wake events are drained internally.
        pub fn wait(&self, out: &mut Vec<u64>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let mut events = [EpollEvent { events: 0, data: 0 }; 128];
            // Round up so a sub-millisecond timeout still sleeps instead
            // of spinning; epoll takes i32 milliseconds.
            let ms = timeout
                .as_millis()
                .max(u128::from(!timeout.is_zero() as u8))
                .min(i32::MAX as u128) as i32;
            let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), 128, ms) };
            if n < 0 {
                let e = last_error();
                if e.raw_os_error() == Some(EINTR) {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &events[..n as usize] {
                let token = ev.data; // copy out of the packed struct
                if token == WAKE_TOKEN {
                    self.drain_wake();
                } else {
                    out.push(token);
                }
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use std::io;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// Fallback poll cadence: the old parker's sweep interval.
    const TICK: Duration = Duration::from_millis(2);

    /// Portable readability wait: a blocking `peek` under a read
    /// timeout. Timer-tick rounding makes this overshoot `timeout`; the
    /// Linux build uses `poll(2)` instead.
    pub fn wait_readable(stream: &TcpStream, timeout: Duration) -> io::Result<bool> {
        let prev = stream.read_timeout()?;
        stream.set_read_timeout(Some(timeout))?;
        let mut probe = [0u8; 1];
        let out = match stream.peek(&mut probe) {
            Ok(_) => Ok(true),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Ok(false)
            }
            // A dead socket is "readable": the caller's read surfaces it.
            Err(_) => Ok(true),
        };
        stream.set_read_timeout(prev)?;
        out
    }

    /// Portable fallback: non-blocking `peek` sweeps over registered
    /// sockets on a short tick. The listener cannot be probed portably,
    /// so its token is reported every tick and the caller's non-blocking
    /// `accept` disambiguates — the pre-epoll acceptor's exact cadence.
    pub struct Poller {
        streams: Mutex<Vec<(u64, TcpStream)>>,
        listener_token: Mutex<Option<u64>>,
        woken: AtomicBool,
    }

    impl Poller {
        /// A fresh fallback poller with nothing registered.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                streams: Mutex::new(Vec::new()),
                listener_token: Mutex::new(None),
                woken: AtomicBool::new(false),
            })
        }

        /// Remembers the listener's token so every wait reports it.
        pub fn register_listener(&self, _listener: &TcpListener, token: u64) -> io::Result<()> {
            *self.listener_token.lock().expect("poller poisoned") = Some(token);
            Ok(())
        }

        /// Adds a connection to the peek sweep under `token`.
        pub fn register(&self, stream: &TcpStream, token: u64) -> io::Result<()> {
            let clone = stream.try_clone()?;
            self.streams.lock().expect("poller poisoned").push((token, clone));
            Ok(())
        }

        /// Removes a connection from the peek sweep.
        pub fn deregister(&self, stream: &TcpStream) -> io::Result<()> {
            let peer = stream.peer_addr()?;
            let mut streams = self.streams.lock().expect("poller poisoned");
            streams.retain(|(_, s)| s.peer_addr().map(|p| p != peer).unwrap_or(false));
            Ok(())
        }

        /// Currently watched connection count (diagnostic gauge).
        pub fn registered(&self) -> u64 {
            self.streams.lock().expect("poller poisoned").len() as u64
        }

        /// Interrupts a concurrent [`Poller::wait`].
        pub fn wake(&self) {
            self.woken.store(true, Ordering::SeqCst);
        }

        /// Sweeps registered sockets until one is readable, a wake
        /// arrives, or `timeout` passes; appends ready tokens to `out`.
        pub fn wait(&self, out: &mut Vec<u64>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let deadline = Instant::now() + timeout;
            loop {
                if self.woken.swap(false, Ordering::SeqCst) {
                    return Ok(());
                }
                {
                    let streams = self.streams.lock().expect("poller poisoned");
                    let mut probe = [0u8; 1];
                    for (token, stream) in streams.iter() {
                        match stream.peek(&mut probe) {
                            Ok(_) => out.push(*token),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                            // Dead socket: readable (EOF/err) to the caller.
                            Err(_) => out.push(*token),
                        }
                    }
                }
                if !out.is_empty() || Instant::now() >= deadline {
                    // The listener may have a pending accept at any time.
                    if let Some(t) = *self.listener_token.lock().expect("poller poisoned") {
                        out.push(t);
                    }
                    return Ok(());
                }
                std::thread::sleep(TICK.min(deadline.saturating_duration_since(Instant::now())));
            }
        }
    }
}

pub use sys::{wait_readable, Poller};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, server_side)
    }

    #[test]
    fn reports_readable_sockets_by_token_and_times_out_otherwise() {
        let poller = Poller::new().unwrap();
        let (mut client, server_side) = pair();
        server_side.set_nonblocking(true).unwrap();
        poller.register(&server_side, 7).unwrap();

        // Silent socket: wait must time out with no tokens.
        let mut ready = Vec::new();
        let t0 = Instant::now();
        poller.wait(&mut ready, Duration::from_millis(30)).unwrap();
        assert!(ready.is_empty(), "no bytes, no tokens: {ready:?}");
        assert!(t0.elapsed() >= Duration::from_millis(20), "wait must block to its timeout");

        // Bytes arrive: the socket's token is reported promptly.
        client.write_all(b"x").unwrap();
        let t0 = Instant::now();
        let mut seen = false;
        while t0.elapsed() < Duration::from_secs(2) {
            poller.wait(&mut ready, Duration::from_millis(100)).unwrap();
            if ready.contains(&7) {
                seen = true;
                break;
            }
        }
        assert!(seen, "readable socket must surface its token");
        assert_eq!(poller.registered(), 1);

        // Deregistered sockets are never reported again.
        poller.deregister(&server_side).unwrap();
        assert_eq!(poller.registered(), 0);
        client.write_all(b"y").unwrap();
        poller.wait(&mut ready, Duration::from_millis(30)).unwrap();
        assert!(!ready.contains(&7), "deregistered token must not reappear");
    }

    #[test]
    fn peer_close_is_readable() {
        // EOF must wake the poller: parked connections whose peer hung
        // up are retired by readiness, not by timeout.
        let poller = Poller::new().unwrap();
        let (client, server_side) = pair();
        server_side.set_nonblocking(true).unwrap();
        poller.register(&server_side, 3).unwrap();
        drop(client);
        let mut ready = Vec::new();
        let t0 = Instant::now();
        let mut seen = false;
        while t0.elapsed() < Duration::from_secs(2) {
            poller.wait(&mut ready, Duration::from_millis(100)).unwrap();
            if ready.contains(&3) {
                seen = true;
                break;
            }
        }
        assert!(seen, "peer close must be reported as readiness");
    }

    #[test]
    fn wake_interrupts_a_long_wait_and_is_not_a_token() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let waker_thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut ready = Vec::new();
        let t0 = Instant::now();
        poller.wait(&mut ready, Duration::from_secs(10)).unwrap();
        let waited = t0.elapsed();
        waker_thread.join().unwrap();
        assert!(waited < Duration::from_secs(5), "wake must interrupt the wait, took {waited:?}");
        assert!(ready.is_empty(), "the wake channel is not a caller token: {ready:?}");

        // A wake with no waiter is consumed by the next wait, which then
        // returns immediately once and blocks again after.
        poller.wake();
        let t0 = Instant::now();
        poller.wait(&mut ready, Duration::from_secs(10)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "pending wake returns immediately");
    }

    #[test]
    fn listener_registration_surfaces_pending_accepts() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register_listener(&listener, LISTENER_TOKEN).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut ready = Vec::new();
        let t0 = Instant::now();
        let mut seen = false;
        while t0.elapsed() < Duration::from_secs(2) {
            poller.wait(&mut ready, Duration::from_millis(100)).unwrap();
            if ready.contains(&LISTENER_TOKEN) {
                seen = true;
                break;
            }
        }
        assert!(seen, "pending accept must surface the listener token");
        assert!(listener.accept().is_ok());
    }
}
