//! The evaluation server: a bounded admission queue feeding a fixed
//! worker pool, with keep-alive connections, per-request deadlines and
//! graceful drain.
//!
//! # Threading model
//!
//! `Server::run` launches one *event loop* plus `workers` evaluation
//! workers as jobs on `diffy_core::parallel::run_jobs` — the same
//! scoped-thread pool the sweeps use, here with one long-lived loop per
//! slot. The event loop blocks on an epoll [`Poller`] that owns the
//! listener and every parked keep-alive socket: it accepts and enqueues
//! new connections when the listener is ready, and moves a parked
//! connection to the queue the moment its next request's first byte
//! arrives — no accept polling, no per-socket sweeps. Workers block on
//! the queue's condvar and drain it until shutdown; every connection a
//! worker dequeues is read-ready (or imminently so). There is no
//! per-request thread spawn and no unbounded buffering anywhere: memory
//! and concurrency are fixed at startup (batch fan-out draws on a fixed
//! server-wide permit pool).
//!
//! # Keep-alive
//!
//! Connections persist across requests (HTTP/1.1 default; `Connection`
//! headers are honored per version). A worker serves exactly **one**
//! request; a connection with a pipelined next request already buffered
//! is *re-enqueued* through the same bounded queue new connections use —
//! a chatty client waits its turn behind everyone else instead of
//! monopolizing a worker. A connection with no request bytes yet is
//! *parked* in a separate bounded lot, outside the admission queue: the
//! worker makes the socket non-blocking, hands it to the event loop
//! (via the lot inbox plus a poller wake), and the event loop registers
//! it with epoll. From then on the connection costs nothing until its
//! readiness event fires — ten thousand idle clients hold zero worker
//! threads and generate zero periodic syscalls (asserted in
//! `tests/serve_epoll.rs`). The event loop closes a parked connection
//! once its idle window (`idle_timeout_ms`) passes, and every
//! connection is closed after `max_requests_per_conn` responses.
//!
//! # Backpressure
//!
//! The queue holds at most `queue_depth` pending connections. When it is
//! full the acceptor answers `503 {"error":"queue full"}` immediately —
//! load sheds at the front door instead of growing latency without bound.
//!
//! # Deadlines
//!
//! Each request carries a deadline (its `deadline_ms`, clamped to the
//! server's `--deadline-ms`), measured from its *anchor* — accept for a
//! connection's first request, arrival of the next request for reused
//! connections — so queue wait counts against it. Workers check it
//! cooperatively between pipeline stages and answer `504` the moment it
//! has passed; a request that expired while queued is never evaluated at
//! all. The socket read budget is the deadline remaining, re-armed
//! before *every* read: a slow-loris peer is cut off when the request
//! budget runs out whether it stays silent or trickles bytes just under
//! each read timeout. Lingering closes carry a wall-clock budget too, so
//! a trickling peer cannot hold a thread in the drain loop either.
//!
//! # Accounting
//!
//! Every admitted request attempt ends as exactly one response, one
//! abort (connection died mid-request) or one idle close (peer finished
//! a keep-alive conversation) — `/metrics` conservation is exact, not
//! best-effort, and `tests/serve_keepalive.rs` asserts it. An attempt is
//! counted when there is evidence a request exists: at accept for a
//! connection's first request, and at its next request's *byte arrival*
//! for keep-alive reuses. A parked connection that idles out or whose
//! peer hangs up between requests therefore closes *quietly* — no
//! attempt was pending, so nothing is recorded against the conservation
//! law (the retirement is visible in the `poller` metrics block
//! instead).
//!
//! # Determinism
//!
//! Workers share one process-wide *bounded* `SweepCache`; evaluation
//! draws traces and term planes through it exactly like the sweep paths
//! do. Cached artifacts are pure functions of their keys and eviction
//! only ever forces recomputation, so a served result is bit-identical to
//! a direct `evaluate_network` call — under any concurrency, queue state,
//! cache history, connection reuse or batching (asserted end-to-end in
//! `tests/serve_e2e.rs` and `tests/serve_keepalive.rs`).

use crate::http::{
    path_segments, read_request_with, write_json_response_conn, BadRequest, ReadError, Request,
    MAX_BODY_BYTES,
};
use crate::metrics::{CloseReason, Metrics, Stage};
use crate::poller::{self, Poller, FIRST_CONN_TOKEN, LISTENER_TOKEN};
use crate::protocol::{error_body, result_to_json, BatchRequest, EvalRequest};
use crate::session::{self, SessionStore};
use diffy_core::json::{parse as parse_json, JsonValue};
use diffy_core::artifact::DiskTier;
use diffy_core::parallel::{run_jobs, Jobs};
use diffy_core::runner::SweepCache;
use diffy_core::trace;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Baseline readiness-wait timeout of the event loop. Readiness events
/// interrupt it immediately; the tick only bounds how stale the session
/// sweep and the drain check can get, so it can be far coarser than the
/// old 5 ms peek sweep.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Readiness-wait clamp while unparked connections are stranded by a
/// full admission queue: retry their hand-off on this cadence instead of
/// waiting out a whole tick.
const JAM_RETRY: Duration = Duration::from_millis(2);

/// Most connections accepted per listener readiness event before the
/// event loop services other work; the level-triggered listener is
/// simply reported ready again on the next wait.
const ACCEPT_BURST: usize = 256;

/// Pause after `accept` fails with EMFILE/ENFILE: the listener stays
/// level-triggered-ready while a connection is pending, so without a
/// backoff the event loop would spin hot on failing accepts until a
/// descriptor frees up.
const ACCEPT_FD_BACKOFF: Duration = Duration::from_millis(10);

/// `errno` values for process/system descriptor exhaustion (POSIX
/// values, identical on Linux and the BSDs).
const ENFILE: i32 = 23;
const EMFILE: i32 = 24;

/// Parked-connection capacity per admission-queue slot (floored at
/// [`MIN_PARKED_CAP`]) for the *inbox* — the bounded worker-to-event-loop
/// hand-off. The inbox only holds connections for the instants between a
/// worker's park and the loop's next absorb pass, so queue-proportional
/// capacity is plenty.
const PARKED_PER_QUEUE_SLOT: usize = 8;

/// Minimum parking-inbox capacity, so tiny-queue configurations still
/// absorb park bursts without refusals.
const MIN_PARKED_CAP: usize = 64;

/// Bound on the event loop's watch set — the idle keep-alive connections
/// held open concurrently. Watched sockets cost one fd and one epoll
/// registration each (no threads, no sweeps), so the bound is fd budget,
/// not queue geometry: 16k idle clients per instance, then refusals.
const MAX_WATCHED: usize = 16_384;

/// Wall-clock budget of a lingering close on a worker thread. The byte
/// cap alone is no bound in time: a peer trickling one byte per
/// sub-timeout read would keep the drain loop alive for hours.
const LINGER_BUDGET: Duration = Duration::from_millis(1_000);

/// Lingering-close budget on the acceptor's 503 shed path: the single
/// accept thread must return to accepting almost immediately, so a shed
/// peer gets one short drain window, not a full linger.
const SHED_LINGER_BUDGET: Duration = Duration::from_millis(25);

/// Grace past the request deadline granted to socket reads: an
/// expired-while-queued request whose bytes have already arrived should
/// still be *answered* 504 rather than torn down mid-read, so the read
/// path aborts only once the deadline is decisively gone.
const READ_GRACE: Duration = Duration::from_millis(250);

/// How long a worker peeks at a just-served connection before parking
/// it: a closed-loop client sends its next request within a round-trip
/// of the response, and catching it here keeps the connection on the
/// hot path (requeue) instead of paying a parker-sweep latency. One
/// bounded peek per response — an idle client costs this once, then
/// waits in the lot, not in a worker's hands.
const PARK_GRACE: Duration = Duration::from_millis(2);

/// Server configuration, mirrored by the CLI's `diffy serve` flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Evaluation worker count.
    pub workers: Jobs,
    /// Admission-queue capacity; a full queue answers 503.
    pub queue_depth: usize,
    /// Default and maximum per-request deadline, in milliseconds.
    pub deadline_ms: u64,
    /// Requests served on one connection before the server closes it
    /// (bounds per-connection state and guarantees turnover).
    pub max_requests_per_conn: u32,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it, in milliseconds.
    pub idle_timeout_ms: u64,
    /// Bounded-cache capacity: resident trace bundles (and weight sets).
    pub trace_cache: usize,
    /// Bounded-cache capacity: resident per-layer term-plane sets.
    pub plane_cache: usize,
    /// Directory of precomputed evaluation artifacts to attach as the
    /// cache's disk tier (`diffy serve --artifact-dir`). Evaluations
    /// read through it and write computed results back; a non-writable
    /// path is a hard bind error.
    pub artifact_dir: Option<String>,
    /// Load every valid artifact from `artifact_dir` into the memory
    /// tier before serving (`--warmup`), so hot keys are sub-millisecond
    /// from the first request.
    pub warmup: bool,
    /// Most streaming sessions live at once; admitting one past the
    /// bound evicts the least-recently-used session.
    pub max_sessions: usize,
    /// How long a streaming session may sit without a frame request
    /// before the sweep expires it, in milliseconds.
    pub session_idle_ms: u64,
    /// Honor the `test_sleep_ms` request field (tests only — lets the
    /// queueing and deadline paths be exercised deterministically).
    pub test_hooks: bool,
    /// Install a SIGTERM/SIGINT handler that triggers graceful drain
    /// (the CLI sets this; in-process tests leave it off).
    pub handle_signals: bool,
    /// Start a span capture on the global `diffy_core::trace` collector
    /// when the server runs. `GET /trace` serves the live capture as
    /// Chrome trace-event JSON; `diffy serve --trace-out` sets this and
    /// writes the drained capture at shutdown.
    pub trace_capture: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: Jobs::available(),
            queue_depth: 32,
            deadline_ms: 30_000,
            max_requests_per_conn: 1_000,
            idle_timeout_ms: 5_000,
            trace_cache: 64,
            plane_cache: 1024,
            artifact_dir: None,
            warmup: false,
            max_sessions: 256,
            session_idle_ms: 60_000,
            test_hooks: false,
            handle_signals: false,
            trace_capture: false,
        }
    }
}

/// One connection waiting for a worker — freshly accepted, or re-enqueued
/// between keep-alive requests. The buffered reader travels with the
/// connection: a pipelined next request may already sit in its buffer,
/// and dropping it would desync the stream.
struct QueuedConn {
    /// Read half (a clone of the socket), with its head/body buffer.
    reader: BufReader<TcpStream>,
    /// Write half.
    writer: TcpStream,
    /// The current request attempt's time anchor: accept for the first
    /// request, re-enqueue (or first-byte arrival after idling) for
    /// later ones. Deadlines and the `request` trace span run from here.
    anchor: Instant,
    /// Id of the pending request attempt (accept-order sequence).
    req_id: u64,
    /// Responses already written on this connection.
    served: u32,
}

/// The bounded admission queue: `Mutex<VecDeque>` + condvar, closed at
/// shutdown so workers drain the backlog and exit.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    pending: VecDeque<QueuedConn>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { pending: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits a connection, or returns it when the queue is full/closed.
    fn try_push(&self, conn: QueuedConn) -> Result<(), QueuedConn> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || state.pending.len() >= self.capacity {
            return Err(conn);
        }
        state.pending.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed *and* drained.
    fn pop(&self) -> Option<QueuedConn> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = state.pending.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Stops admissions and wakes every waiting worker.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").pending.len()
    }
}

/// A keep-alive connection waiting — outside the admission queue — for
/// its next request's first byte.
struct ParkedConn {
    conn: QueuedConn,
    /// When the idle window expires and the parker closes the connection.
    idle_deadline: Instant,
}

/// The bounded inbox of parked keep-alive connections, on their way
/// from a worker to the event loop. Parked sockets are non-blocking; a
/// worker pushes here and wakes the poller, and the event loop drains
/// the inbox and registers each socket with epoll. Keeping idle
/// connections here — not in the admission queue — means `queue_depth`
/// idle clients cannot starve fresh connections into 503s, and workers
/// never burn cycles cycling idle connections.
struct ParkingLot {
    state: Mutex<LotState>,
    capacity: usize,
}

struct LotState {
    parked: Vec<ParkedConn>,
    closed: bool,
}

impl ParkingLot {
    fn new(capacity: usize) -> Self {
        Self { state: Mutex::new(LotState { parked: Vec::new(), closed: false }), capacity }
    }

    /// Admits a connection to the lot, or returns it (lot full, or
    /// closed for drain).
    fn try_park(&self, conn: ParkedConn) -> Result<(), ParkedConn> {
        let mut state = self.state.lock().expect("lot poisoned");
        if state.closed || state.parked.len() >= self.capacity {
            return Err(conn);
        }
        state.parked.push(conn);
        Ok(())
    }

    /// Takes every parked connection for one sweep; survivors are
    /// re-admitted via [`ParkingLot::try_park`].
    fn take_all(&self) -> Vec<ParkedConn> {
        std::mem::take(&mut self.state.lock().expect("lot poisoned").parked)
    }

    /// Closes the lot (late parkers are refused, under the same lock, so
    /// none can slip in after the final sweep) and returns the backlog.
    fn close(&self) -> Vec<ParkedConn> {
        let mut state = self.state.lock().expect("lot poisoned");
        state.closed = true;
        std::mem::take(&mut state.parked)
    }
}

/// Permits bounding the *extra* evaluation threads batch requests may
/// fan out, server-wide. Each `/evaluate/batch` always runs on its own
/// serving worker and adds only as many threads as it can take permits
/// for, so `workers` concurrent batches top out near 2× the pool — not
/// workers² as an uncapped per-request `run_jobs` fan would.
struct FanPermits {
    available: Mutex<usize>,
}

impl FanPermits {
    fn new(n: usize) -> Self {
        Self { available: Mutex::new(n) }
    }

    /// Takes up to `want` permits without blocking; returns how many
    /// were taken (possibly zero — the caller then runs inline).
    fn acquire_up_to(&self, want: usize) -> usize {
        let mut avail = self.available.lock().expect("permits poisoned");
        let take = want.min(*avail);
        *avail -= take;
        take
    }

    fn release(&self, n: usize) {
        *self.available.lock().expect("permits poisoned") += n;
    }
}

/// Releases its fan permits on drop, so a panicking batch cannot leak
/// them.
struct PermitGuard<'a> {
    permits: &'a FanPermits,
    n: usize,
}

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        self.permits.release(self.n);
    }
}

/// State shared between the event loop, the workers and
/// [`ServerHandle`]s.
struct Shared {
    queue: ConnQueue,
    parked: ParkingLot,
    /// Readiness notification: the event loop waits on it; workers wake
    /// it when they park a connection into the lot inbox.
    poller: Poller,
    batch_fan: FanPermits,
    metrics: Metrics,
    cache: SweepCache,
    sessions: SessionStore,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Source of accept-order request ids.
    req_seq: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_DRAIN.load(Ordering::SeqCst)
    }
}

/// Process-global flag set by the SIGTERM/SIGINT handler. Signal-safe:
/// the handler does exactly one atomic store.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler() {
    unsafe extern "C" fn on_signal(_signum: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    type Handler = unsafe extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> isize;
    }
    // 15 = SIGTERM, 2 = SIGINT; std links libc on unix, so `signal` is
    // always available without adding a dependency.
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handler() {}

/// A bound evaluation server. [`Server::run`] blocks the calling thread
/// until shutdown; use [`Server::handle`] (or `POST /shutdown`, or
/// SIGTERM with [`ServeConfig::handle_signals`]) to trigger a graceful
/// drain from elsewhere.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful drain: stop accepting, finish queued requests,
    /// then let `run` return. In-flight keep-alive connections finish
    /// their current request with `Connection: close`. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.draining()
    }
}

impl Server {
    /// Binds the listener and builds the shared state. The server does
    /// not accept connections until [`Server::run`].
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        assert!(config.queue_depth >= 1, "queue depth must be at least 1");
        assert!(config.max_requests_per_conn >= 1, "per-connection cap must be at least 1");
        assert!(config.idle_timeout_ms >= 1, "idle timeout must be at least 1ms");
        assert!(config.max_sessions >= 1, "session capacity must be at least 1");
        assert!(config.session_idle_ms >= 1, "session idle timeout must be at least 1ms");
        let mut cache = SweepCache::bounded(config.trace_cache, config.plane_cache);
        if let Some(dir) = &config.artifact_dir {
            // A broken artifact dir must fail the bind, not degrade
            // every request: opening probes writability (the tier
            // write-through and `precompute` both need it).
            let tier = DiskTier::open(dir).map_err(|e| {
                io::Error::new(e.kind(), format!("artifact dir `{dir}` is not usable: {e}"))
            })?;
            cache = cache.with_disk(tier);
            if config.warmup {
                let warmed = cache.warm_from_disk();
                trace::instant("warmup", || vec![("artifacts", (warmed as u64).into())]);
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let parked_cap = config.queue_depth.saturating_mul(PARKED_PER_QUEUE_SLOT).max(MIN_PARKED_CAP);
        let shared = Arc::new(Shared {
            queue: ConnQueue::new(config.queue_depth),
            parked: ParkingLot::new(parked_cap),
            poller: Poller::new().map_err(|e| {
                io::Error::new(e.kind(), format!("readiness poller setup failed: {e}"))
            })?,
            batch_fan: FanPermits::new(config.workers.get().saturating_sub(1)),
            metrics: Metrics::new(),
            cache,
            sessions: SessionStore::new(
                config.max_sessions,
                Duration::from_millis(config.session_idle_ms),
            ),
            config,
            shutdown: AtomicBool::new(false),
            req_seq: AtomicU64::new(0),
        });
        Ok(Server { listener, local_addr, shared })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The configuration this server was bound with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Serves until graceful drain completes: the event loop + workers
    /// run as one scoped-thread pool; on shutdown the event loop stops
    /// admitting, queued requests are still answered, parked
    /// connections are retired, then all threads join.
    pub fn run(self) -> io::Result<()> {
        if self.shared.config.handle_signals {
            install_signal_handler();
        }
        if self.shared.config.trace_capture {
            trace::Collector::global().start();
        }
        self.listener.set_nonblocking(true)?;
        self.shared.poller.register_listener(&self.listener, LISTENER_TOKEN)?;
        let workers = self.shared.config.workers.get();
        let shared = &self.shared;
        let listener = &self.listener;

        let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(workers + 1);
        jobs.push(Box::new(move || event_loop(shared, listener)));
        for _ in 0..workers {
            jobs.push(Box::new(move || worker_loop(shared)));
        }
        run_jobs(jobs, Jobs::new(workers + 1));
        Ok(())
    }
}

/// The event loop's mutable state: every parked socket it watches, the
/// idle-deadline order over them, connections stranded by a full queue,
/// and the token source.
struct LoopState {
    /// Parked connections by poller token.
    watched: HashMap<u64, ParkedConn>,
    /// Idle deadlines, soonest first. Entries whose token has already
    /// been unparked are stale and skipped (the map is authoritative).
    expiry: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Read-ready connections a full admission queue refused: their
    /// next attempt is already counted, they stay *non-blocking*, and
    /// the loop retries the hand-off on the [`JAM_RETRY`] cadence.
    jammed: VecDeque<ParkedConn>,
    next_token: u64,
}

/// The event-driven core: one thread blocking on the poller, owning the
/// listener and every parked keep-alive socket. Accepts are admitted or
/// shed; parked sockets are unparked the instant their next request's
/// bytes arrive and retired when their idle window passes. On drain it
/// retires everything and closes the queue so workers finish the
/// backlog and exit.
fn event_loop(shared: &Shared, listener: &TcpListener) {
    let mut state = LoopState {
        watched: HashMap::new(),
        expiry: BinaryHeap::new(),
        jammed: VecDeque::new(),
        next_token: FIRST_CONN_TOKEN,
    };
    let mut ready: Vec<u64> = Vec::new();
    while !shared.draining() {
        let timeout = wait_timeout(&state);
        if shared.poller.wait(&mut ready, timeout).is_err() {
            // A broken poller cannot be recovered mid-flight; drain.
            shared.shutdown.store(true, Ordering::SeqCst);
            break;
        }
        shared.metrics.poller_wakeups_total.fetch_add(1, Ordering::Relaxed);
        for &token in &ready {
            match token {
                LISTENER_TOKEN => accept_ready(shared, listener),
                token => unpark_ready(shared, &mut state, token),
            }
        }
        absorb_inbox(shared, &mut state);
        expire_idle(shared, &mut state);
        retry_jammed(shared, &mut state);
        let expired = shared.sessions.sweep(Instant::now());
        if expired > 0 {
            trace::instant("sessions_expired", || vec![("count", (expired as u64).into())]);
        }
        shared.metrics.poller_parked.store(state.watched.len() as u64, Ordering::Relaxed);
    }
    // Drain: closing the lot refuses late parkers under the lot's own
    // lock, so no connection can slip in behind this retirement and
    // leak. Parked connections carry no pending attempt — quiet closes;
    // jammed ones do — their stranded attempts end as idle closes.
    for p in shared.parked.close() {
        close_conn_quiet(shared, p.conn);
    }
    for (_, p) in state.watched.drain() {
        let _ = shared.poller.deregister(&p.conn.writer);
        close_conn_quiet(shared, p.conn);
    }
    for p in state.jammed {
        close_conn(shared, p.conn, Some(CloseReason::Idle));
    }
    shared.metrics.poller_parked.store(0, Ordering::Relaxed);
    shared.queue.close();
}

/// How long the event loop may block: the baseline tick, cut to the
/// next idle expiry, or the jam-retry cadence while hand-offs are
/// pending.
fn wait_timeout(state: &LoopState) -> Duration {
    let mut timeout = POLL_TICK;
    if let Some(Reverse((due, _))) = state.expiry.peek() {
        timeout = timeout.min(due.saturating_duration_since(Instant::now()));
    }
    if !state.jammed.is_empty() {
        timeout = timeout.min(JAM_RETRY);
    }
    timeout
}

/// Services a listener readiness event: accepts (bounded by
/// [`ACCEPT_BURST`]), counts, and enqueues or sheds each connection.
fn accept_ready(shared: &Shared, listener: &TcpListener) {
    for _ in 0..ACCEPT_BURST {
        if shared.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are written whole; without TCP_NODELAY the
                // kernel would sit on the final short segment of a
                // keep-alive response waiting for the peer's delayed ACK.
                let _ = stream.set_nodelay(true);
                let m = &shared.metrics;
                m.connections_total.fetch_add(1, Ordering::Relaxed);
                m.connections_open.fetch_add(1, Ordering::Relaxed);
                m.requests_total.fetch_add(1, Ordering::Relaxed);
                let req_id = shared.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
                // Both halves are cloned up front; a clone that fails
                // here is a connection that died before it carried
                // anything — counted, never silently dropped.
                let reader = match stream.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(_) => {
                        m.record_close(CloseReason::Aborted);
                        m.connections_open.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                };
                let conn = QueuedConn {
                    reader,
                    writer: stream,
                    anchor: Instant::now(),
                    req_id,
                    served: 0,
                };
                if let Err(mut rejected) = shared.queue.try_push(conn) {
                    m.queue_rejected_total.fetch_add(1, Ordering::Relaxed);
                    trace::instant("queue_shed", || vec![("req", req_id.into())]);
                    respond(shared, &mut rejected, 503, &error_body("queue full"), false);
                    // Shortened linger: this is the event-loop thread,
                    // and a shed storm must not stall accepts or parked
                    // readiness.
                    close_conn_within(shared, rejected, None, SHED_LINGER_BUDGET);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Descriptor exhaustion (EMFILE/ENFILE): accepting is
            // impossible until something closes, but the pending
            // connection keeps the level-triggered listener readable —
            // without a pause the event loop would spin hot on failing
            // accepts. Back off a beat; retirements free descriptors.
            Err(e) if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) => {
                std::thread::sleep(ACCEPT_FD_BACKOFF);
                return;
            }
            // Transient accept failures (e.g. the peer reset before the
            // handshake finished) should not kill the server; the
            // level-triggered listener will report again if more wait.
            Err(_) => return,
        }
    }
}

/// Moves connections a worker just parked from the lot inbox into the
/// poller's watch set. [`MAX_WATCHED`] bounds the watch set (the inbox
/// itself is drained every pass): past it, parked connections are
/// refused and retired quietly, exactly as a full lot refused them
/// pre-epoll.
fn absorb_inbox(shared: &Shared, state: &mut LoopState) {
    for p in shared.parked.take_all() {
        if state.watched.len() >= MAX_WATCHED {
            shared.metrics.poller_park_refused_total.fetch_add(1, Ordering::Relaxed);
            close_conn_quiet(shared, p.conn);
            continue;
        }
        let token = state.next_token;
        state.next_token += 1;
        match shared.poller.register(&p.conn.writer, token) {
            Ok(()) => {
                state.expiry.push(Reverse((p.idle_deadline, token)));
                state.watched.insert(token, p);
            }
            // A socket that cannot be watched cannot be resumed; no
            // attempt is pending, so it retires quietly.
            Err(_) => close_conn_quiet(shared, p.conn),
        }
    }
}

/// Services a readiness event on a parked connection: EOF retires it
/// quietly (the peer finished the conversation; no attempt was
/// pending), bytes begin its next counted attempt and hand it to the
/// admission queue.
fn unpark_ready(shared: &Shared, state: &mut LoopState, token: u64) {
    // Tokens can go stale (unparked by an earlier event this round, or
    // expired): the watch map is authoritative.
    let Some(mut p) = state.watched.remove(&token) else { return };
    let _ = shared.poller.deregister(&p.conn.writer);
    let mut probe = [0u8; 1];
    match p.conn.writer.peek(&mut probe) {
        Ok(0) => close_conn_quiet(shared, p.conn),
        Ok(_) => {
            begin_next_attempt(shared, &mut p.conn);
            enqueue_unparked(shared, state, p);
        }
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted) => {
            // Spurious readiness: re-watch under the same deadline.
            match shared.poller.register(&p.conn.writer, token) {
                Ok(()) => {
                    state.expiry.push(Reverse((p.idle_deadline, token)));
                    state.watched.insert(token, p);
                }
                Err(_) => close_conn_quiet(shared, p.conn),
            }
        }
        Err(_) => close_conn_quiet(shared, p.conn),
    }
}

/// Hands an unparked connection (attempt already counted) to the
/// admission queue. The socket is made blocking only when the queue
/// actually takes it; when the queue is full it *stays non-blocking*
/// and waits on the jam list — the pre-epoll parker flipped it to
/// blocking before the push and re-parked it that way on failure,
/// leaving a socket whose next sweep `peek` could stall the parker
/// thread for its stale read timeout.
fn enqueue_unparked(shared: &Shared, state: &mut LoopState, p: ParkedConn) {
    let ParkedConn { conn, idle_deadline } = p;
    if conn.writer.set_nonblocking(false).is_err() {
        return close_conn(shared, conn, Some(CloseReason::Aborted));
    }
    match shared.queue.try_push(conn) {
        Ok(()) => {
            shared.metrics.poller_unparked_total.fetch_add(1, Ordering::Relaxed);
        }
        Err(conn) => {
            if conn.writer.set_nonblocking(true).is_err() {
                return close_conn(shared, conn, Some(CloseReason::Aborted));
            }
            state.jammed.push_back(ParkedConn { conn, idle_deadline });
        }
    }
}

/// Retires watched connections whose idle window has passed. No attempt
/// is pending on a parked connection, so these are quiet closes,
/// surfaced via `poller.expired` instead of the request ledger.
fn expire_idle(shared: &Shared, state: &mut LoopState) {
    let now = Instant::now();
    while let Some(Reverse((due, token))) = state.expiry.peek().copied() {
        if due > now {
            break;
        }
        state.expiry.pop();
        // Already unparked or retired → stale entry, skip.
        if let Some(p) = state.watched.remove(&token) {
            let _ = shared.poller.deregister(&p.conn.writer);
            shared.metrics.poller_expired_total.fetch_add(1, Ordering::Relaxed);
            close_conn_quiet(shared, p.conn);
        }
    }
}

/// Retries the queue hand-off for jam-stranded connections; ones whose
/// idle window passed while stranded close with their counted attempt
/// recorded as an idle close (the bound on how long a jam can strand
/// them).
fn retry_jammed(shared: &Shared, state: &mut LoopState) {
    let now = Instant::now();
    for p in std::mem::take(&mut state.jammed) {
        if p.idle_deadline <= now {
            close_conn(shared, p.conn, Some(CloseReason::Idle));
        } else {
            enqueue_unparked(shared, state, p);
        }
    }
}

/// Counts and ids a keep-alive connection's next request attempt. Called
/// only once the attempt's existence is evidenced by buffered or
/// arrived bytes — a dead or silent connection never counts a reuse.
fn begin_next_attempt(shared: &Shared, conn: &mut QueuedConn) {
    shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    shared.metrics.keepalive_reuses_total.fetch_add(1, Ordering::Relaxed);
    conn.req_id = shared.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
    // Anchor at the bytes' arrival: deadlines and queue-wait measure
    // this request, not the client's think time.
    conn.anchor = Instant::now();
}

/// Drains the queue until it is closed and empty.
fn worker_loop(shared: &Shared) {
    while let Some(conn) = shared.queue.pop() {
        handle_connection(shared, conn);
    }
}

/// Writes a JSON response with the decided connection disposition,
/// counting it; write errors only mean the peer went away, which the
/// server must survive. Returns whether the write succeeded (a failed
/// write poisons the connection — it must not be reused).
fn respond(shared: &Shared, conn: &mut QueuedConn, status: u16, body: &str, keep: bool) -> bool {
    shared.metrics.record_response(status);
    conn.served += 1;
    let _ = conn.writer.set_write_timeout(Some(Duration::from_secs(10)));
    write_json_response_conn(&mut conn.writer, status, body, keep).is_ok()
}

/// Retires a connection. `unanswered` records an attempt that ends
/// without a response (abort or idle close) so request accounting stays
/// exact; `None` means the last attempt was answered.
///
/// A connection that served responses ends with a *lingering close*:
/// half-close the write side, then drain whatever the peer already sent
/// before dropping the socket. A 503 is written before the request has
/// been read at all — closing with unread bytes in the receive buffer
/// makes the kernel send RST, which can discard the very response the
/// peer is about to read.
fn close_conn(shared: &Shared, conn: QueuedConn, unanswered: Option<CloseReason>) {
    close_conn_within(shared, conn, unanswered, LINGER_BUDGET);
}

/// [`close_conn`] with an explicit wall-clock budget for the lingering
/// drain. The drain is bounded in bytes *and* time: the byte cap alone
/// would let a peer trickling one byte per sub-timeout read pin the
/// closing thread for hours.
fn close_conn_within(
    shared: &Shared,
    mut conn: QueuedConn,
    unanswered: Option<CloseReason>,
    linger: Duration,
) {
    if let Some(reason) = unanswered {
        shared.metrics.record_close(reason);
    }
    shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
    shared.metrics.requests_per_conn_max.fetch_max(u64::from(conn.served), Ordering::Relaxed);
    if conn.served == 0 || unanswered.is_some() {
        return; // nothing was answered; nothing to protect with a linger
    }
    // The socket may arrive here still in non-blocking mode (a parked
    // connection the lot refused, a jam-stranded one): restore blocking
    // so the drain reads below honor their timeouts. Treating the
    // resulting `WouldBlock` as a fatal error instead used to skip the
    // linger entirely — an immediate close whose RST could eat the very
    // response the linger exists to protect.
    if conn.writer.set_nonblocking(false).is_err() {
        return;
    }
    let _ = conn.writer.shutdown(Shutdown::Write);
    let linger_deadline = Instant::now() + linger;
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    // Stop at the peer's close, an error, one body's worth, or the
    // linger budget — whichever comes first. A timed-out read is not an
    // error: it spends its slice of the budget and the loop head decides
    // whether any remains.
    while drained <= MAX_BODY_BYTES {
        let remaining = linger_deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        let _ = conn.writer.set_read_timeout(Some(remaining.min(Duration::from_millis(500))));
        match io::Read::read(&mut conn.writer, &mut scratch) {
            Ok(0) => break,
            Ok(n) => drained += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
}

/// Retires a connection with *no* request attempt pending: the peer went
/// silent or hung up between requests, after its last response was
/// answered. Nothing is recorded against the request ledger (no attempt
/// was counted for it), and there is no linger — the quiet paths are
/// reached only when a peek found silence or EOF, so no unread bytes
/// can trigger an RST that would eat a response.
fn close_conn_quiet(shared: &Shared, conn: QueuedConn) {
    shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
    shared.metrics.requests_per_conn_max.fetch_max(u64::from(conn.served), Ordering::Relaxed);
}

/// Disposes of a connection after a keep-alive response: a connection
/// whose next request is already buffered or arrives within
/// [`PARK_GRACE`] begins its next *counted* attempt and re-enters the
/// admission queue — it waits its turn behind every other queued
/// connection — while a silent one is parked (non-blocking) with the
/// event loop until its next request's first byte arrives. The next
/// attempt is counted only once its bytes exist: a connection that
/// turns out dead here never inflates `keepalive_reuses_total` with a
/// reuse that carried no request, and a parked retirement stays off the
/// request ledger entirely. A full (or closed) queue or lot ends the
/// conversation instead — bounded state beats unbounded politeness.
fn requeue_or_park(shared: &Shared, mut conn: QueuedConn) {
    if conn.reader.buffer().is_empty() {
        // A closed-loop client's next request lands within a round-trip:
        // one short readiness wait catches it and keeps the connection
        // on the hot path. Silence past the grace parks it — this is the
        // only wait an idle connection ever costs a worker. The wait is
        // `poll(2)`, not a blocking peek under `SO_RCVTIMEO`: socket
        // timeouts round up to kernel timer ticks (~8 ms for a 2 ms
        // grace), which would cap one worker at ~125 parks/s.
        let quiet = match poller::wait_readable(&conn.writer, PARK_GRACE) {
            Ok(ready) => !ready,
            Err(_) => return close_conn_quiet(shared, conn),
        };
        if quiet {
            let idle_deadline =
                Instant::now() + Duration::from_millis(shared.config.idle_timeout_ms);
            if conn.writer.set_nonblocking(true).is_err() {
                return close_conn_quiet(shared, conn);
            }
            match shared.parked.try_park(ParkedConn { conn, idle_deadline }) {
                // The event loop may be mid-wait: wake it to absorb
                // the inbox and register the socket.
                Ok(()) => shared.poller.wake(),
                Err(p) => {
                    shared.metrics.poller_park_refused_total.fetch_add(1, Ordering::Relaxed);
                    close_conn_quiet(shared, p.conn);
                }
            }
            return;
        }
        // Readable: bound the peek so a spurious readiness on a
        // blocking socket cannot stall the worker.
        let _ = conn.writer.set_read_timeout(Some(PARK_GRACE));
        let mut probe = [0u8; 1];
        match conn.writer.peek(&mut probe) {
            // The peer finished the conversation (EOF) before any next
            // request existed: nothing is pending, retire quietly.
            Ok(0) => return close_conn_quiet(shared, conn),
            Ok(_) => {}
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                let idle_deadline =
                    Instant::now() + Duration::from_millis(shared.config.idle_timeout_ms);
                if conn.writer.set_nonblocking(true).is_err() {
                    return close_conn_quiet(shared, conn);
                }
                match shared.parked.try_park(ParkedConn { conn, idle_deadline }) {
                    Ok(()) => shared.poller.wake(),
                    Err(p) => {
                        shared.metrics.poller_park_refused_total.fetch_add(1, Ordering::Relaxed);
                        close_conn_quiet(shared, p.conn);
                    }
                }
                return;
            }
            Err(_) => return close_conn_quiet(shared, conn),
        }
    }
    // Bytes exist (buffered pipeline or grace-peek arrival): this is a
    // real next attempt.
    begin_next_attempt(shared, &mut conn);
    if let Err(conn) = shared.queue.try_push(conn) {
        close_conn(shared, conn, Some(CloseReason::Idle));
    }
}

/// Serves one request off a dequeued connection, then re-enqueues, parks
/// or retires it. Every queued connection is *live*: its request bytes
/// are buffered, arriving, or expected imminently — idle ones wait in
/// the parking lot instead, so a worker here never babysits silence.
fn handle_connection(shared: &Shared, mut conn: QueuedConn) {
    let dequeued_at = Instant::now();

    // The socket read budget is whatever remains of the request
    // deadline, re-armed before *every* read: a peer trickling bytes
    // just under each read timeout is still cut off once the budget
    // (plus the grace that lets an expired-while-queued request be
    // answered 504) is gone — not indulged one timeout per byte.
    let read_deadline =
        conn.anchor + Duration::from_millis(shared.config.deadline_ms) + READ_GRACE;
    let writer = &conn.writer;
    let mut tick = move || -> io::Result<()> {
        let remaining = read_deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request deadline exceeded during read",
            ));
        }
        let _ = writer.set_read_timeout(Some(
            remaining.clamp(Duration::from_millis(10), Duration::from_secs(10)),
        ));
        Ok(())
    };

    let request = match read_request_with(&mut conn.reader, &mut tick) {
        Err(ReadError::Idle) => return close_conn(shared, conn, Some(CloseReason::Idle)),
        Err(ReadError::Io(_)) => return close_conn(shared, conn, Some(CloseReason::Aborted)),
        Ok(Err(BadRequest { status, message })) => {
            // The framing is no longer trustworthy — answer and close;
            // reusing the stream could misread the next request's head.
            respond(shared, &mut conn, status, &error_body(&message), false);
            return close_conn(shared, conn, None);
        }
        Ok(Ok(req)) => req,
    };

    // Connection disposition: what the client asked for, bounded by the
    // server's drain state and per-connection request cap.
    let mut keep = request.keep_alive()
        && !shared.draining()
        && conn.served + 1 < shared.config.max_requests_per_conn;

    // Session routes carry an id path segment, so they dispatch on
    // canonicalized segments; everything else matches the literal path.
    let segs = path_segments(&request.path);
    let healthy = match (request.method.as_str(), segs.as_slice()) {
        ("POST", ["session"]) => {
            handle_session(shared, &mut conn, dequeued_at, keep, "session_create", |now| {
                match std::str::from_utf8(&request.body) {
                    Ok(text) => session::handle_create(&shared.sessions, text, now),
                    Err(_) => (400, error_body("body must be UTF-8 JSON")),
                }
            })
        }
        ("POST", ["session", id, "frame"]) => {
            handle_session(shared, &mut conn, dequeued_at, keep, "session_frame", |now| {
                match std::str::from_utf8(&request.body) {
                    Ok(text) => {
                        session::handle_frame(&shared.sessions, &shared.cache, id, text, now)
                    }
                    Err(_) => (400, error_body("body must be UTF-8 JSON")),
                }
            })
        }
        ("DELETE", ["session", id]) => {
            handle_session(shared, &mut conn, dequeued_at, keep, "session_close", |_now| {
                session::handle_close(&shared.sessions, id)
            })
        }
        (_, ["session"] | ["session", _] | ["session", _, "frame"]) => {
            respond(shared, &mut conn, 405, &error_body("method not allowed"), keep)
        }
        _ => match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/evaluate") => {
                handle_evaluate(shared, &mut conn, &request, dequeued_at, keep)
            }
            ("POST", "/evaluate/batch") => {
                handle_evaluate_batch(shared, &mut conn, &request, dequeued_at, keep)
            }
            ("GET", "/trace") => {
                let body = trace::Collector::global().snapshot().to_chrome_json().to_json();
                respond(shared, &mut conn, 200, &body, keep)
            }
            ("GET", "/metrics") => {
                let body = shared
                    .metrics
                    .to_json(
                        shared.queue.depth(),
                        shared.config.queue_depth,
                        shared.cache.stats(),
                        shared.sessions.stats(),
                    )
                    .to_json();
                respond(shared, &mut conn, 200, &body, keep)
            }
            ("GET", "/healthz") => {
                let draining = shared.draining();
                let body = JsonValue::object(vec![
                    ("status", JsonValue::from(if draining { "draining" } else { "ok" })),
                ])
                .to_json();
                respond(shared, &mut conn, 200, &body, keep)
            }
            ("POST", "/shutdown") => {
                shared.shutdown.store(true, Ordering::SeqCst);
                keep = false;
                let body = JsonValue::object(vec![("draining", JsonValue::Bool(true))]).to_json();
                respond(shared, &mut conn, 200, &body, false)
            }
            ("POST" | "GET", "/evaluate" | "/evaluate/batch" | "/metrics" | "/healthz"
            | "/shutdown" | "/trace") => {
                respond(shared, &mut conn, 405, &error_body("method not allowed"), keep)
            }
            _ => respond(shared, &mut conn, 404, &error_body("no such endpoint"), keep),
        },
    };

    if keep && healthy {
        requeue_or_park(shared, conn);
    } else {
        close_conn(shared, conn, None);
    }
}

/// The `/evaluate` pipeline: parse → trace → evaluate → serialize, with a
/// cooperative deadline check between every stage.
///
/// A "request" trace span anchored at the connection's current anchor
/// (accept, or next-request arrival on reused connections) covers the
/// whole pipeline (tagged with the request id); each stage records both a
/// child span and its `/metrics` stage histogram, and the stages tile the
/// request end to end — queue wait through response write — so their
/// durations sum to the latency histogram's sample up to span overhead.
fn handle_evaluate(
    shared: &Shared,
    conn: &mut QueuedConn,
    request: &Request,
    dequeued_at: Instant,
    keep: bool,
) -> bool {
    let anchored_at = conn.anchor;
    let req_id = conn.req_id;
    let collector = trace::Collector::global();
    let _req_span =
        collector.span_from("request", collector.ns_of(anchored_at), || vec![("req", req_id.into())]);
    let queue_wait = dequeued_at.saturating_duration_since(anchored_at);
    shared.metrics.stage(Stage::QueueWait).record(queue_wait);
    collector.record_manual(
        Stage::QueueWait.name(),
        collector.ns_of(anchored_at),
        queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let (status, body) = evaluate_stages(shared, request, anchored_at, dequeued_at);
    if status == 504 {
        shared.metrics.deadline_expired_total.fetch_add(1, Ordering::Relaxed);
    }

    let write_start = Instant::now();
    let healthy = {
        let _s = collector.span(Stage::Write.name());
        respond(shared, conn, status, &body, keep)
    };
    shared.metrics.stage(Stage::Write).record(write_start.elapsed());
    shared.metrics.latency.record(anchored_at.elapsed());
    healthy
}

fn evaluate_stages(
    shared: &Shared,
    request: &Request,
    anchored_at: Instant,
    dequeued_at: Instant,
) -> (u16, String) {
    let collector = trace::Collector::global();
    let metrics = &shared.metrics;
    // Stage 0: decode. (Deadline: a request that waited out its budget in
    // the queue is answered 504 without being parsed at all.) The parse
    // stage is measured from dequeue so it covers the socket read too.
    let parse_result = (|| {
        let Ok(body_text) = std::str::from_utf8(&request.body) else {
            return Err((400, error_body("body must be UTF-8 JSON")));
        };
        let parsed = match parse_json(body_text) {
            Ok(v) => v,
            Err(e) => return Err((400, error_body(&format!("bad JSON: {e}")))),
        };
        EvalRequest::from_json(&parsed).map_err(|e| (400, error_body(&e)))
    })();
    let parse_elapsed = dequeued_at.elapsed();
    metrics.stage(Stage::Parse).record(parse_elapsed);
    collector.record_manual(
        Stage::Parse.name(),
        collector.ns_of(dequeued_at),
        parse_elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );
    let eval_req = match parse_result {
        Ok(r) => r,
        Err(resp) => return resp,
    };

    let budget_ms = eval_req.deadline_ms.unwrap_or(shared.config.deadline_ms);
    let deadline = anchored_at + Duration::from_millis(budget_ms.min(shared.config.deadline_ms));
    let expired = |stage: &str| {
        (504, error_body(&format!("deadline exceeded ({stage})")))
    };
    if Instant::now() >= deadline {
        return expired("queued");
    }

    if shared.config.test_hooks {
        if let Some(ms) = eval_req.test_sleep_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    // Stage 1: under the tiered store, trace materialization is lazy —
    // it happens inside the evaluation stage, and only on a full tier
    // miss (a memory- or disk-hit request never builds a trace at all).
    // The stage keeps its slot in the span taxonomy and histograms so
    // the pipeline still tiles end to end; it now brackets only the
    // request's workload/options decode.
    let stage_start = Instant::now();
    let (workload, eval) = {
        let _s = collector.span(Stage::Trace.name());
        (eval_req.workload(), eval_req.eval_options())
    };
    metrics.stage(Stage::Trace).record(stage_start.elapsed());

    // Stage 2: resolve the result through the tiers — memory result
    // store, then disk artifacts, then compute (which draws traces and
    // term planes from the same shared stores the sweeps use).
    let stage_start = Instant::now();
    let run = {
        let _s = collector.span(Stage::Evaluate.name());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.cache.evaluate_keyed(
                eval_req.model,
                eval_req.dataset,
                eval_req.sample,
                &workload,
                &eval,
            )
        }))
    };
    metrics.stage(Stage::Evaluate).record(stage_start.elapsed());
    let artifact = match run {
        Ok(a) => a,
        Err(_) => return (500, error_body("evaluation failed")),
    };
    if Instant::now() >= deadline {
        return expired("evaluated");
    }

    // Stage 3: serialize — the exact runner result, deterministically.
    let stage_start = Instant::now();
    let body = {
        let _s = collector.span(Stage::Serialize.name());
        result_to_json(&artifact.result, artifact.source_pixels).to_json()
    };
    metrics.stage(Stage::Serialize).record(stage_start.elapsed());
    (200, body)
}

/// The `/evaluate/batch` pipeline: one parsed batch fans its items over
/// the same `run_jobs` pool and shared `SweepCache` the sweeps use, so
/// weights, traces and per-layer term planes are built once per key
/// across the whole batch. Items are independent: each reports its own
/// result or error, in request order, and each result is bit-identical
/// to the equivalent standalone `POST /evaluate` body.
fn handle_evaluate_batch(
    shared: &Shared,
    conn: &mut QueuedConn,
    request: &Request,
    dequeued_at: Instant,
    keep: bool,
) -> bool {
    let anchored_at = conn.anchor;
    let req_id = conn.req_id;
    let collector = trace::Collector::global();
    let metrics = &shared.metrics;
    let _req_span = collector.span_from("request", collector.ns_of(anchored_at), || {
        vec![("req", req_id.into()), ("kind", "batch".into())]
    });
    let queue_wait = dequeued_at.saturating_duration_since(anchored_at);
    metrics.stage(Stage::QueueWait).record(queue_wait);
    collector.record_manual(
        Stage::QueueWait.name(),
        collector.ns_of(anchored_at),
        queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let parse_result = (|| {
        let Ok(body_text) = std::str::from_utf8(&request.body) else {
            return Err((400, error_body("body must be UTF-8 JSON")));
        };
        let parsed = match parse_json(body_text) {
            Ok(v) => v,
            Err(e) => return Err((400, error_body(&format!("bad JSON: {e}")))),
        };
        BatchRequest::from_json(&parsed).map_err(|e| (400, error_body(&e)))
    })();
    let parse_elapsed = dequeued_at.elapsed();
    metrics.stage(Stage::Parse).record(parse_elapsed);
    collector.record_manual(
        Stage::Parse.name(),
        collector.ns_of(dequeued_at),
        parse_elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let (status, body) = match parse_result {
        Err(resp) => resp,
        Ok(batch) => {
            metrics.batch_items_total.fetch_add(batch.items.len() as u64, Ordering::Relaxed);
            let budget_ms = batch.deadline_ms.unwrap_or(shared.config.deadline_ms);
            let deadline =
                anchored_at + Duration::from_millis(budget_ms.min(shared.config.deadline_ms));

            // Fan the items over the pool, bounded *globally*: the batch
            // always gets this serving worker (fan 1 runs inline) plus
            // however many extra-thread permits remain server-wide, so
            // W workers all serving batches at once cannot stack W²
            // evaluation threads. Results come back in item order
            // (run_jobs is order-stable at any parallelism).
            let want =
                batch.items.len().min(shared.config.workers.get()).saturating_sub(1);
            let extra = shared.batch_fan.acquire_up_to(want);
            let _permits = PermitGuard { permits: &shared.batch_fan, n: extra };
            let fan = Jobs::new(1 + extra);
            let tasks: Vec<_> = batch
                .items
                .iter()
                .map(|item| move || evaluate_batch_item(shared, item, deadline))
                .collect();
            let stage_start = Instant::now();
            let outcomes = {
                let _s = collector.span(Stage::Evaluate.name());
                run_jobs(tasks, fan)
            };
            drop(_permits);
            metrics.stage(Stage::Evaluate).record(stage_start.elapsed());

            let expired = outcomes.iter().filter(|(s, _)| *s == 504).count() as u64;
            if expired > 0 {
                metrics.deadline_expired_total.fetch_add(expired, Ordering::Relaxed);
            }
            let errors = outcomes.iter().filter(|(s, _)| *s != 200).count();

            let stage_start = Instant::now();
            let body = {
                let _s = collector.span(Stage::Serialize.name());
                JsonValue::object(vec![
                    ("count", outcomes.len().into()),
                    ("errors", errors.into()),
                    (
                        "items",
                        JsonValue::Array(outcomes.into_iter().map(|(_, v)| v).collect()),
                    ),
                ])
                .to_json()
            };
            metrics.stage(Stage::Serialize).record(stage_start.elapsed());
            (200, body)
        }
    };

    let write_start = Instant::now();
    let healthy = {
        let _s = collector.span(Stage::Write.name());
        respond(shared, conn, status, &body, keep)
    };
    metrics.stage(Stage::Write).record(write_start.elapsed());
    metrics.latency.record(anchored_at.elapsed());
    healthy
}

/// Evaluates one batch item: `{"status": 200, "result": {…}}` on
/// success — the embedded object is byte-identical to the standalone
/// `POST /evaluate` body — or `{"status": s, "error": "…"}`.
fn evaluate_batch_item(
    shared: &Shared,
    parsed: &Result<EvalRequest, String>,
    deadline: Instant,
) -> (u16, JsonValue) {
    let item_error = |status: u16, msg: &str| {
        (
            status,
            JsonValue::object(vec![
                ("status", u64::from(status).into()),
                ("error", JsonValue::from(msg)),
            ]),
        )
    };
    let req = match parsed {
        Ok(r) => r,
        Err(e) => return item_error(400, e),
    };
    if Instant::now() >= deadline {
        return item_error(504, "deadline exceeded (batch)");
    }
    if shared.config.test_hooks {
        if let Some(ms) = req.test_sleep_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if Instant::now() >= deadline {
            return item_error(504, "deadline exceeded (batch)");
        }
    }
    let workload = req.workload();
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.cache.evaluate_keyed(req.model, req.dataset, req.sample, &workload, &req.eval_options())
    }));
    match run {
        Err(_) => item_error(500, "evaluation failed"),
        Ok(artifact) => (
            200,
            JsonValue::object(vec![
                ("status", 200u64.into()),
                ("result", result_to_json(&artifact.result, artifact.source_pixels)),
            ]),
        ),
    }
}

/// Shared pipeline for the three session routes: the request trace span
/// (tagged with the route kind), queue-wait accounting, a panic-fenced
/// evaluation stage, and the response write. Session work rides the
/// `evaluate` stage histogram — frame pricing runs the same engine the
/// one-shot path does — so `/metrics` needs no new stage taxonomy.
fn handle_session(
    shared: &Shared,
    conn: &mut QueuedConn,
    dequeued_at: Instant,
    keep: bool,
    kind: &'static str,
    run: impl FnOnce(Instant) -> (u16, String),
) -> bool {
    let anchored_at = conn.anchor;
    let req_id = conn.req_id;
    let collector = trace::Collector::global();
    let _req_span = collector.span_from("request", collector.ns_of(anchored_at), || {
        vec![("req", req_id.into()), ("kind", kind.into())]
    });
    let queue_wait = dequeued_at.saturating_duration_since(anchored_at);
    shared.metrics.stage(Stage::QueueWait).record(queue_wait);
    collector.record_manual(
        Stage::QueueWait.name(),
        collector.ns_of(anchored_at),
        queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let stage_start = Instant::now();
    let outcome = {
        let _s = collector.span(Stage::Evaluate.name());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(stage_start)))
    };
    shared.metrics.stage(Stage::Evaluate).record(stage_start.elapsed());
    let (status, body) =
        outcome.unwrap_or_else(|_| (500, error_body("session evaluation failed")));

    let write_start = Instant::now();
    let healthy = {
        let _s = collector.span(Stage::Write.name());
        respond(shared, conn, status, &body, keep)
    };
    shared.metrics.stage(Stage::Write).record(write_start.elapsed());
    shared.metrics.latency.record(anchored_at.elapsed());
    healthy
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn queue_sheds_above_capacity_and_drains_after_close() {
        // Pure queue-discipline test with synthetic connections: use a
        // real loopback listener only as a TcpStream factory.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mk = || {
            let _client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            let reader = BufReader::new(server_side.try_clone().unwrap());
            QueuedConn {
                reader,
                writer: server_side,
                anchor: Instant::now(),
                req_id: 0,
                served: 0,
            }
        };
        let q = ConnQueue::new(2);
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_err(), "third admit must shed");
        assert_eq!(q.depth(), 2);
        q.close();
        assert!(q.try_push(mk()).is_err(), "closed queue admits nothing");
        assert!(q.pop().is_some(), "backlog drains after close");
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "drained + closed ends the workers");
    }

    #[test]
    fn fan_permits_bound_total_extra_threads() {
        let permits = FanPermits::new(3);
        assert_eq!(permits.acquire_up_to(2), 2, "takes what it asks for while available");
        assert_eq!(permits.acquire_up_to(5), 1, "then only what remains");
        assert_eq!(permits.acquire_up_to(4), 0, "exhausted pool degrades to inline");
        permits.release(1);
        assert_eq!(permits.acquire_up_to(4), 1, "released permits come back");
        permits.release(3);
    }

    #[test]
    fn parking_lot_is_bounded_and_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mk = || {
            let _client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            let reader = BufReader::new(server_side.try_clone().unwrap());
            ParkedConn {
                conn: QueuedConn {
                    reader,
                    writer: server_side,
                    anchor: Instant::now(),
                    req_id: 0,
                    served: 1,
                },
                idle_deadline: Instant::now() + Duration::from_secs(1),
            }
        };
        let lot = ParkingLot::new(2);
        assert!(lot.try_park(mk()).is_ok());
        assert!(lot.try_park(mk()).is_ok());
        assert!(lot.try_park(mk()).is_err(), "third park must be refused");
        assert_eq!(lot.close().len(), 2, "close returns the backlog");
        assert!(lot.try_park(mk()).is_err(), "closed lot refuses late parkers");
    }

    #[test]
    fn lingering_close_is_bounded_in_wall_clock_not_just_bytes() {
        // A peer that trickles bytes keeps every drain read succeeding;
        // only the linger's wall-clock budget may end it. Byte budget
        // alone would run this for MAX_BODY_BYTES reads.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let conn = QueuedConn {
            reader: BufReader::new(server_side.try_clone().unwrap()),
            writer: server_side,
            anchor: Instant::now(),
            req_id: 1,
            served: 1, // answered: close_conn will linger
        };
        let trickler = std::thread::spawn(move || {
            // ~2 s of trickle, one byte every 50 ms; stop on EPIPE.
            for _ in 0..40 {
                if client.write_all(b"x").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let shared = test_shared();
        shared.metrics.connections_open.fetch_add(1, Ordering::Relaxed);
        let closing = Instant::now();
        close_conn_within(&shared, conn, None, Duration::from_millis(200));
        let held = closing.elapsed();
        assert!(
            held < Duration::from_millis(1_500),
            "linger must stop at its budget, held {held:?}"
        );
        trickler.join().unwrap();
    }

    fn test_shared() -> Shared {
        Shared {
            queue: ConnQueue::new(1),
            parked: ParkingLot::new(1),
            poller: Poller::new().unwrap(),
            batch_fan: FanPermits::new(0),
            metrics: Metrics::new(),
            cache: SweepCache::bounded(1, 1),
            sessions: SessionStore::new(1, Duration::from_secs(1)),
            config: ServeConfig::default(),
            shutdown: AtomicBool::new(false),
            req_seq: AtomicU64::new(0),
        }
    }

    #[test]
    fn lingering_close_drains_a_nonblocking_socket_against_its_budget() {
        // Regression: a connection can reach its close while the socket
        // is still in non-blocking mode (a parked connection the lot
        // refused, a jam-stranded one). The drain loop used to treat the
        // resulting `WouldBlock` as `Err(_) => break`, skipping the
        // linger entirely — the close raced the peer's final read and an
        // RST could eat the response. The close must restore blocking
        // mode and drain against its budget.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap(); // as a parked socket would be
        let conn = QueuedConn {
            reader: BufReader::new(server_side.try_clone().unwrap()),
            writer: server_side,
            anchor: Instant::now(),
            req_id: 1,
            served: 1, // answered: close_conn must linger
        };
        let peer = std::thread::spawn(move || {
            // The peer is mid-send when the server decides to close: its
            // trailing bytes land 150 ms in, then it hangs up.
            std::thread::sleep(Duration::from_millis(150));
            let _ = client.write_all(b"tail");
            std::thread::sleep(Duration::from_millis(30));
        });
        let shared = test_shared();
        shared.metrics.connections_open.fetch_add(1, Ordering::Relaxed);
        let closing = Instant::now();
        close_conn_within(&shared, conn, None, Duration::from_millis(1_000));
        let held = closing.elapsed();
        peer.join().unwrap();
        assert!(
            held >= Duration::from_millis(100),
            "nonblocking socket must not skip the linger (returned in {held:?})"
        );
        assert!(held < Duration::from_millis(1_500), "and the budget still bounds it: {held:?}");
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_depth >= 1);
        assert!(c.workers.get() >= 1);
        assert!(c.deadline_ms > 0);
        assert!(c.max_requests_per_conn >= 1);
        assert!(c.idle_timeout_ms >= 1);
        assert!(!c.test_hooks);
    }
}
