//! The evaluation server: a bounded admission queue feeding a fixed
//! worker pool, with keep-alive connections, per-request deadlines and
//! graceful drain.
//!
//! # Threading model
//!
//! `Server::run` launches one acceptor plus `workers` evaluation workers
//! as jobs on `diffy_core::parallel::run_jobs` — the same scoped-thread
//! pool the sweeps use, here with one long-lived loop per slot. The
//! acceptor polls a non-blocking listener, counts the connection, and
//! tries to enqueue it; workers block on the queue's condvar and drain it
//! until shutdown. There is no per-request thread spawn and no unbounded
//! buffering anywhere: memory and concurrency are fixed at startup.
//!
//! # Keep-alive
//!
//! Connections persist across requests (HTTP/1.1 default; `Connection`
//! headers are honored per version). A worker serves exactly **one**
//! request, then *re-enqueues the connection* through the same bounded
//! queue new connections use — a chatty client waits its turn behind
//! everyone else instead of monopolizing a worker. A parked connection
//! with no request bytes yet is *polled* (a short bounded `peek`) and
//! re-parked, so an idle client never pins a worker either; it is closed
//! once its idle window (`idle_timeout_ms`) passes, and every connection
//! is closed after `max_requests_per_conn` responses.
//!
//! # Backpressure
//!
//! The queue holds at most `queue_depth` pending connections. When it is
//! full the acceptor answers `503 {"error":"queue full"}` immediately —
//! load sheds at the front door instead of growing latency without bound.
//!
//! # Deadlines
//!
//! Each request carries a deadline (its `deadline_ms`, clamped to the
//! server's `--deadline-ms`), measured from its *anchor* — accept for a
//! connection's first request, arrival of the next request for reused
//! connections — so queue wait counts against it. Workers check it
//! cooperatively between pipeline stages and answer `504` the moment it
//! has passed; a request that expired while queued is never evaluated at
//! all. The socket read timeout is derived from the deadline remaining
//! at dequeue, so a slow-loris peer is cut off when the request budget
//! runs out, not after a fixed 10 s grace.
//!
//! # Accounting
//!
//! Every admitted request attempt ends as exactly one response, one
//! abort (connection died mid-request) or one idle close (peer finished
//! a keep-alive conversation) — `/metrics` conservation is exact, not
//! best-effort, and `tests/serve_keepalive.rs` asserts it.
//!
//! # Determinism
//!
//! Workers share one process-wide *bounded* `SweepCache`; evaluation
//! draws traces and term planes through it exactly like the sweep paths
//! do. Cached artifacts are pure functions of their keys and eviction
//! only ever forces recomputation, so a served result is bit-identical to
//! a direct `evaluate_network` call — under any concurrency, queue state,
//! cache history, connection reuse or batching (asserted end-to-end in
//! `tests/serve_e2e.rs` and `tests/serve_keepalive.rs`).

use crate::http::{
    read_request, write_json_response_conn, BadRequest, ReadError, Request, MAX_BODY_BYTES,
};
use crate::metrics::{CloseReason, Metrics, Stage};
use crate::protocol::{error_body, result_to_json, BatchRequest, EvalRequest};
use diffy_core::json::{parse as parse_json, JsonValue};
use diffy_core::parallel::{run_jobs, Jobs};
use diffy_core::runner::SweepCache;
use diffy_core::trace;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a worker waits on a parked keep-alive connection before
/// re-parking it: long enough that an actively pipelining client is
/// picked up the instant its bytes land, short enough that an idle
/// connection never pins a worker.
const IDLE_POLL: Duration = Duration::from_millis(2);

/// Server configuration, mirrored by the CLI's `diffy serve` flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Evaluation worker count.
    pub workers: Jobs,
    /// Admission-queue capacity; a full queue answers 503.
    pub queue_depth: usize,
    /// Default and maximum per-request deadline, in milliseconds.
    pub deadline_ms: u64,
    /// Requests served on one connection before the server closes it
    /// (bounds per-connection state and guarantees turnover).
    pub max_requests_per_conn: u32,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it, in milliseconds.
    pub idle_timeout_ms: u64,
    /// Bounded-cache capacity: resident trace bundles (and weight sets).
    pub trace_cache: usize,
    /// Bounded-cache capacity: resident per-layer term-plane sets.
    pub plane_cache: usize,
    /// Honor the `test_sleep_ms` request field (tests only — lets the
    /// queueing and deadline paths be exercised deterministically).
    pub test_hooks: bool,
    /// Install a SIGTERM/SIGINT handler that triggers graceful drain
    /// (the CLI sets this; in-process tests leave it off).
    pub handle_signals: bool,
    /// Start a span capture on the global `diffy_core::trace` collector
    /// when the server runs. `GET /trace` serves the live capture as
    /// Chrome trace-event JSON; `diffy serve --trace-out` sets this and
    /// writes the drained capture at shutdown.
    pub trace_capture: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: Jobs::available(),
            queue_depth: 32,
            deadline_ms: 30_000,
            max_requests_per_conn: 1_000,
            idle_timeout_ms: 5_000,
            trace_cache: 64,
            plane_cache: 1024,
            test_hooks: false,
            handle_signals: false,
            trace_capture: false,
        }
    }
}

/// One connection waiting for a worker — freshly accepted, or re-enqueued
/// between keep-alive requests. The buffered reader travels with the
/// connection: a pipelined next request may already sit in its buffer,
/// and dropping it would desync the stream.
struct QueuedConn {
    /// Read half (a clone of the socket), with its head/body buffer.
    reader: BufReader<TcpStream>,
    /// Write half.
    writer: TcpStream,
    /// The current request attempt's time anchor: accept for the first
    /// request, re-enqueue (or first-byte arrival after idling) for
    /// later ones. Deadlines and the `request` trace span run from here.
    anchor: Instant,
    /// Id of the pending request attempt (accept-order sequence).
    req_id: u64,
    /// Responses already written on this connection.
    served: u32,
}

/// The bounded admission queue: `Mutex<VecDeque>` + condvar, closed at
/// shutdown so workers drain the backlog and exit.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    pending: VecDeque<QueuedConn>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { pending: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits a connection, or returns it when the queue is full/closed.
    fn try_push(&self, conn: QueuedConn) -> Result<(), QueuedConn> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || state.pending.len() >= self.capacity {
            return Err(conn);
        }
        state.pending.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed *and* drained.
    fn pop(&self) -> Option<QueuedConn> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = state.pending.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Stops admissions and wakes every waiting worker.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").pending.len()
    }
}

/// State shared between the acceptor, the workers and [`ServerHandle`]s.
struct Shared {
    queue: ConnQueue,
    metrics: Metrics,
    cache: SweepCache,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Source of accept-order request ids.
    req_seq: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_DRAIN.load(Ordering::SeqCst)
    }
}

/// Process-global flag set by the SIGTERM/SIGINT handler. Signal-safe:
/// the handler does exactly one atomic store.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler() {
    unsafe extern "C" fn on_signal(_signum: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    type Handler = unsafe extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> isize;
    }
    // 15 = SIGTERM, 2 = SIGINT; std links libc on unix, so `signal` is
    // always available without adding a dependency.
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handler() {}

/// A bound evaluation server. [`Server::run`] blocks the calling thread
/// until shutdown; use [`Server::handle`] (or `POST /shutdown`, or
/// SIGTERM with [`ServeConfig::handle_signals`]) to trigger a graceful
/// drain from elsewhere.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful drain: stop accepting, finish queued requests,
    /// then let `run` return. In-flight keep-alive connections finish
    /// their current request with `Connection: close`. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.draining()
    }
}

impl Server {
    /// Binds the listener and builds the shared state. The server does
    /// not accept connections until [`Server::run`].
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        assert!(config.queue_depth >= 1, "queue depth must be at least 1");
        assert!(config.max_requests_per_conn >= 1, "per-connection cap must be at least 1");
        assert!(config.idle_timeout_ms >= 1, "idle timeout must be at least 1ms");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: ConnQueue::new(config.queue_depth),
            metrics: Metrics::new(),
            cache: SweepCache::bounded(config.trace_cache, config.plane_cache),
            config,
            shutdown: AtomicBool::new(false),
            req_seq: AtomicU64::new(0),
        });
        Ok(Server { listener, local_addr, shared })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The configuration this server was bound with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Serves until graceful drain completes: acceptor + workers run as
    /// one scoped-thread pool; on shutdown the acceptor stops admitting,
    /// queued requests are still answered, then all threads join.
    pub fn run(self) -> io::Result<()> {
        if self.shared.config.handle_signals {
            install_signal_handler();
        }
        if self.shared.config.trace_capture {
            trace::Collector::global().start();
        }
        self.listener.set_nonblocking(true)?;
        let workers = self.shared.config.workers.get();
        let shared = &self.shared;
        let listener = &self.listener;

        let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(workers + 1);
        jobs.push(Box::new(move || accept_loop(shared, listener)));
        for _ in 0..workers {
            jobs.push(Box::new(move || worker_loop(shared)));
        }
        run_jobs(jobs, Jobs::new(workers + 1));
        Ok(())
    }
}

/// Accepts connections until drain, enqueueing or shedding each, then
/// closes the queue so workers finish the backlog and exit.
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are written whole; without TCP_NODELAY the
                // kernel would sit on the final short segment of a
                // keep-alive response waiting for the peer's delayed ACK.
                let _ = stream.set_nodelay(true);
                let m = &shared.metrics;
                m.connections_total.fetch_add(1, Ordering::Relaxed);
                m.connections_open.fetch_add(1, Ordering::Relaxed);
                m.requests_total.fetch_add(1, Ordering::Relaxed);
                let req_id = shared.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
                // Both halves are cloned up front; a clone that fails
                // here is a connection that died before it carried
                // anything — counted, never silently dropped.
                let reader = match stream.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(_) => {
                        m.record_close(CloseReason::Aborted);
                        m.connections_open.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                };
                let conn = QueuedConn {
                    reader,
                    writer: stream,
                    anchor: Instant::now(),
                    req_id,
                    served: 0,
                };
                if let Err(mut rejected) = shared.queue.try_push(conn) {
                    m.queue_rejected_total.fetch_add(1, Ordering::Relaxed);
                    trace::instant("queue_shed", || vec![("req", req_id.into())]);
                    respond(shared, &mut rejected, 503, &error_body("queue full"), false);
                    close_conn(shared, rejected, None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept failures (e.g. the peer reset before the
            // handshake finished) should not kill the server.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    shared.queue.close();
}

/// Drains the queue until it is closed and empty.
fn worker_loop(shared: &Shared) {
    while let Some(conn) = shared.queue.pop() {
        handle_connection(shared, conn);
    }
}

/// Writes a JSON response with the decided connection disposition,
/// counting it; write errors only mean the peer went away, which the
/// server must survive. Returns whether the write succeeded (a failed
/// write poisons the connection — it must not be reused).
fn respond(shared: &Shared, conn: &mut QueuedConn, status: u16, body: &str, keep: bool) -> bool {
    shared.metrics.record_response(status);
    conn.served += 1;
    let _ = conn.writer.set_write_timeout(Some(Duration::from_secs(10)));
    write_json_response_conn(&mut conn.writer, status, body, keep).is_ok()
}

/// Retires a connection. `unanswered` records an attempt that ends
/// without a response (abort or idle close) so request accounting stays
/// exact; `None` means the last attempt was answered.
///
/// A connection that served responses ends with a *lingering close*:
/// half-close the write side, then drain whatever the peer already sent
/// before dropping the socket. A 503 is written before the request has
/// been read at all — closing with unread bytes in the receive buffer
/// makes the kernel send RST, which can discard the very response the
/// peer is about to read.
fn close_conn(shared: &Shared, mut conn: QueuedConn, unanswered: Option<CloseReason>) {
    if let Some(reason) = unanswered {
        shared.metrics.record_close(reason);
    }
    shared.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
    shared.metrics.requests_per_conn_max.fetch_max(u64::from(conn.served), Ordering::Relaxed);
    if conn.served == 0 || unanswered.is_some() {
        return; // nothing was answered; nothing to protect with a linger
    }
    let _ = conn.writer.shutdown(Shutdown::Write);
    let _ = conn.writer.set_read_timeout(Some(Duration::from_millis(500)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    // Bounded: stop at the peer's close, a timeout, or one body's worth.
    while drained <= MAX_BODY_BYTES {
        match io::Read::read(&mut conn.writer, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Re-enqueues a connection after a keep-alive response: the next
/// request attempt starts now and waits its turn behind every other
/// queued connection. A full (or closed) queue ends the conversation
/// instead — bounded state beats unbounded politeness.
fn requeue(shared: &Shared, mut conn: QueuedConn) {
    shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    shared.metrics.keepalive_reuses_total.fetch_add(1, Ordering::Relaxed);
    conn.req_id = shared.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
    conn.anchor = Instant::now();
    if let Err(conn) = shared.queue.try_push(conn) {
        close_conn(shared, conn, Some(CloseReason::Idle));
    }
}

/// Serves one request off a dequeued connection, then re-enqueues or
/// retires it.
fn handle_connection(shared: &Shared, mut conn: QueuedConn) {
    let mut dequeued_at = Instant::now();

    // A reused connection with no buffered bytes may simply be idle:
    // poll briefly instead of blocking, and re-park it so this worker
    // can serve someone who is actually talking.
    if conn.served > 0 && conn.reader.buffer().is_empty() {
        let idle_deadline = conn.anchor + Duration::from_millis(shared.config.idle_timeout_ms);
        let _ = conn.writer.set_read_timeout(Some(IDLE_POLL));
        let mut probe = [0u8; 1];
        match conn.writer.peek(&mut probe) {
            Ok(0) => return close_conn(shared, conn, Some(CloseReason::Idle)),
            Ok(_) => {
                // The next request starts the moment its bytes arrive:
                // re-anchor so queue-wait and the deadline measure this
                // request, not the client's think time.
                conn.anchor = Instant::now();
                dequeued_at = conn.anchor;
            }
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                if shared.draining() || Instant::now() >= idle_deadline {
                    return close_conn(shared, conn, Some(CloseReason::Idle));
                }
                if let Err(conn) = shared.queue.try_push(conn) {
                    return close_conn(shared, conn, Some(CloseReason::Idle));
                }
                return;
            }
            Err(_) => return close_conn(shared, conn, Some(CloseReason::Aborted)),
        }
    }

    // The socket read budget is whatever remains of the request deadline
    // at dequeue — a slow-loris peer is cut off with the deadline, not
    // indulged for a fixed 10 s.
    let budget = Duration::from_millis(shared.config.deadline_ms);
    let remaining = (conn.anchor + budget).saturating_duration_since(Instant::now());
    let read_timeout =
        remaining.clamp(Duration::from_millis(10), Duration::from_secs(10));
    let _ = conn.writer.set_read_timeout(Some(read_timeout));

    let request = match read_request(&mut conn.reader) {
        Err(ReadError::Idle) => return close_conn(shared, conn, Some(CloseReason::Idle)),
        Err(ReadError::Io(_)) => return close_conn(shared, conn, Some(CloseReason::Aborted)),
        Ok(Err(BadRequest { status, message })) => {
            // The framing is no longer trustworthy — answer and close;
            // reusing the stream could misread the next request's head.
            respond(shared, &mut conn, status, &error_body(&message), false);
            return close_conn(shared, conn, None);
        }
        Ok(Ok(req)) => req,
    };

    // Connection disposition: what the client asked for, bounded by the
    // server's drain state and per-connection request cap.
    let mut keep = request.keep_alive()
        && !shared.draining()
        && conn.served + 1 < shared.config.max_requests_per_conn;

    let healthy = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/evaluate") => handle_evaluate(shared, &mut conn, &request, dequeued_at, keep),
        ("POST", "/evaluate/batch") => {
            handle_evaluate_batch(shared, &mut conn, &request, dequeued_at, keep)
        }
        ("GET", "/trace") => {
            let body = trace::Collector::global().snapshot().to_chrome_json().to_json();
            respond(shared, &mut conn, 200, &body, keep)
        }
        ("GET", "/metrics") => {
            let body = shared
                .metrics
                .to_json(shared.queue.depth(), shared.config.queue_depth, shared.cache.stats())
                .to_json();
            respond(shared, &mut conn, 200, &body, keep)
        }
        ("GET", "/healthz") => {
            let draining = shared.draining();
            let body = JsonValue::object(vec![
                ("status", JsonValue::from(if draining { "draining" } else { "ok" })),
            ])
            .to_json();
            respond(shared, &mut conn, 200, &body, keep)
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            keep = false;
            let body = JsonValue::object(vec![("draining", JsonValue::Bool(true))]).to_json();
            respond(shared, &mut conn, 200, &body, false)
        }
        ("POST" | "GET", "/evaluate" | "/evaluate/batch" | "/metrics" | "/healthz"
        | "/shutdown" | "/trace") => {
            respond(shared, &mut conn, 405, &error_body("method not allowed"), keep)
        }
        _ => respond(shared, &mut conn, 404, &error_body("no such endpoint"), keep),
    };

    if keep && healthy {
        requeue(shared, conn);
    } else {
        close_conn(shared, conn, None);
    }
}

/// The `/evaluate` pipeline: parse → trace → evaluate → serialize, with a
/// cooperative deadline check between every stage.
///
/// A "request" trace span anchored at the connection's current anchor
/// (accept, or next-request arrival on reused connections) covers the
/// whole pipeline (tagged with the request id); each stage records both a
/// child span and its `/metrics` stage histogram, and the stages tile the
/// request end to end — queue wait through response write — so their
/// durations sum to the latency histogram's sample up to span overhead.
fn handle_evaluate(
    shared: &Shared,
    conn: &mut QueuedConn,
    request: &Request,
    dequeued_at: Instant,
    keep: bool,
) -> bool {
    let anchored_at = conn.anchor;
    let req_id = conn.req_id;
    let collector = trace::Collector::global();
    let _req_span =
        collector.span_from("request", collector.ns_of(anchored_at), || vec![("req", req_id.into())]);
    let queue_wait = dequeued_at.saturating_duration_since(anchored_at);
    shared.metrics.stage(Stage::QueueWait).record(queue_wait);
    collector.record_manual(
        Stage::QueueWait.name(),
        collector.ns_of(anchored_at),
        queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let (status, body) = evaluate_stages(shared, request, anchored_at, dequeued_at);
    if status == 504 {
        shared.metrics.deadline_expired_total.fetch_add(1, Ordering::Relaxed);
    }

    let write_start = Instant::now();
    let healthy = {
        let _s = collector.span(Stage::Write.name());
        respond(shared, conn, status, &body, keep)
    };
    shared.metrics.stage(Stage::Write).record(write_start.elapsed());
    shared.metrics.latency.record(anchored_at.elapsed());
    healthy
}

fn evaluate_stages(
    shared: &Shared,
    request: &Request,
    anchored_at: Instant,
    dequeued_at: Instant,
) -> (u16, String) {
    let collector = trace::Collector::global();
    let metrics = &shared.metrics;
    // Stage 0: decode. (Deadline: a request that waited out its budget in
    // the queue is answered 504 without being parsed at all.) The parse
    // stage is measured from dequeue so it covers the socket read too.
    let parse_result = (|| {
        let Ok(body_text) = std::str::from_utf8(&request.body) else {
            return Err((400, error_body("body must be UTF-8 JSON")));
        };
        let parsed = match parse_json(body_text) {
            Ok(v) => v,
            Err(e) => return Err((400, error_body(&format!("bad JSON: {e}")))),
        };
        EvalRequest::from_json(&parsed).map_err(|e| (400, error_body(&e)))
    })();
    let parse_elapsed = dequeued_at.elapsed();
    metrics.stage(Stage::Parse).record(parse_elapsed);
    collector.record_manual(
        Stage::Parse.name(),
        collector.ns_of(dequeued_at),
        parse_elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );
    let eval_req = match parse_result {
        Ok(r) => r,
        Err(resp) => return resp,
    };

    let budget_ms = eval_req.deadline_ms.unwrap_or(shared.config.deadline_ms);
    let deadline = anchored_at + Duration::from_millis(budget_ms.min(shared.config.deadline_ms));
    let expired = |stage: &str| {
        (504, error_body(&format!("deadline exceeded ({stage})")))
    };
    if Instant::now() >= deadline {
        return expired("queued");
    }

    if shared.config.test_hooks {
        if let Some(ms) = eval_req.test_sleep_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    // Stage 1: materialize the trace (cache-shared across requests).
    let workload = eval_req.workload();
    let stage_start = Instant::now();
    let run = {
        let _s = collector.span(Stage::Trace.name());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.cache.bundle(eval_req.model, eval_req.dataset, eval_req.sample, &workload)
        }))
    };
    metrics.stage(Stage::Trace).record(stage_start.elapsed());
    let bundle = match run {
        Ok(b) => b,
        Err(_) => return (500, error_body("trace generation failed")),
    };
    if Instant::now() >= deadline {
        return expired("traced");
    }

    // Stage 2: price the trace on the requested architecture.
    let eval = eval_req.eval_options();
    let stage_start = Instant::now();
    let run = {
        let _s = collector.span(Stage::Evaluate.name());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.cache.evaluate(eval_req.model, eval_req.dataset, eval_req.sample, &workload, &eval)
        }))
    };
    metrics.stage(Stage::Evaluate).record(stage_start.elapsed());
    let result = match run {
        Ok(r) => r,
        Err(_) => return (500, error_body("evaluation failed")),
    };
    if Instant::now() >= deadline {
        return expired("evaluated");
    }

    // Stage 3: serialize — the exact runner result, deterministically.
    let stage_start = Instant::now();
    let body = {
        let _s = collector.span(Stage::Serialize.name());
        result_to_json(&result, bundle.source_pixels).to_json()
    };
    metrics.stage(Stage::Serialize).record(stage_start.elapsed());
    (200, body)
}

/// The `/evaluate/batch` pipeline: one parsed batch fans its items over
/// the same `run_jobs` pool and shared `SweepCache` the sweeps use, so
/// weights, traces and per-layer term planes are built once per key
/// across the whole batch. Items are independent: each reports its own
/// result or error, in request order, and each result is bit-identical
/// to the equivalent standalone `POST /evaluate` body.
fn handle_evaluate_batch(
    shared: &Shared,
    conn: &mut QueuedConn,
    request: &Request,
    dequeued_at: Instant,
    keep: bool,
) -> bool {
    let anchored_at = conn.anchor;
    let req_id = conn.req_id;
    let collector = trace::Collector::global();
    let metrics = &shared.metrics;
    let _req_span = collector.span_from("request", collector.ns_of(anchored_at), || {
        vec![("req", req_id.into()), ("kind", "batch".into())]
    });
    let queue_wait = dequeued_at.saturating_duration_since(anchored_at);
    metrics.stage(Stage::QueueWait).record(queue_wait);
    collector.record_manual(
        Stage::QueueWait.name(),
        collector.ns_of(anchored_at),
        queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let parse_result = (|| {
        let Ok(body_text) = std::str::from_utf8(&request.body) else {
            return Err((400, error_body("body must be UTF-8 JSON")));
        };
        let parsed = match parse_json(body_text) {
            Ok(v) => v,
            Err(e) => return Err((400, error_body(&format!("bad JSON: {e}")))),
        };
        BatchRequest::from_json(&parsed).map_err(|e| (400, error_body(&e)))
    })();
    let parse_elapsed = dequeued_at.elapsed();
    metrics.stage(Stage::Parse).record(parse_elapsed);
    collector.record_manual(
        Stage::Parse.name(),
        collector.ns_of(dequeued_at),
        parse_elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let (status, body) = match parse_result {
        Err(resp) => resp,
        Ok(batch) => {
            metrics.batch_items_total.fetch_add(batch.items.len() as u64, Ordering::Relaxed);
            let budget_ms = batch.deadline_ms.unwrap_or(shared.config.deadline_ms);
            let deadline =
                anchored_at + Duration::from_millis(budget_ms.min(shared.config.deadline_ms));

            // Fan the items over the pool, capped at the server's worker
            // count; results come back in item order (run_jobs is
            // order-stable at any parallelism).
            let fan = Jobs::new(batch.items.len().min(shared.config.workers.get()));
            let tasks: Vec<_> = batch
                .items
                .iter()
                .map(|item| move || evaluate_batch_item(shared, item, deadline))
                .collect();
            let stage_start = Instant::now();
            let outcomes = {
                let _s = collector.span(Stage::Evaluate.name());
                run_jobs(tasks, fan)
            };
            metrics.stage(Stage::Evaluate).record(stage_start.elapsed());

            let expired = outcomes.iter().filter(|(s, _)| *s == 504).count() as u64;
            if expired > 0 {
                metrics.deadline_expired_total.fetch_add(expired, Ordering::Relaxed);
            }
            let errors = outcomes.iter().filter(|(s, _)| *s != 200).count();

            let stage_start = Instant::now();
            let body = {
                let _s = collector.span(Stage::Serialize.name());
                JsonValue::object(vec![
                    ("count", outcomes.len().into()),
                    ("errors", errors.into()),
                    (
                        "items",
                        JsonValue::Array(outcomes.into_iter().map(|(_, v)| v).collect()),
                    ),
                ])
                .to_json()
            };
            metrics.stage(Stage::Serialize).record(stage_start.elapsed());
            (200, body)
        }
    };

    let write_start = Instant::now();
    let healthy = {
        let _s = collector.span(Stage::Write.name());
        respond(shared, conn, status, &body, keep)
    };
    metrics.stage(Stage::Write).record(write_start.elapsed());
    metrics.latency.record(anchored_at.elapsed());
    healthy
}

/// Evaluates one batch item: `{"status": 200, "result": {…}}` on
/// success — the embedded object is byte-identical to the standalone
/// `POST /evaluate` body — or `{"status": s, "error": "…"}`.
fn evaluate_batch_item(
    shared: &Shared,
    parsed: &Result<EvalRequest, String>,
    deadline: Instant,
) -> (u16, JsonValue) {
    let item_error = |status: u16, msg: &str| {
        (
            status,
            JsonValue::object(vec![
                ("status", u64::from(status).into()),
                ("error", JsonValue::from(msg)),
            ]),
        )
    };
    let req = match parsed {
        Ok(r) => r,
        Err(e) => return item_error(400, e),
    };
    if Instant::now() >= deadline {
        return item_error(504, "deadline exceeded (batch)");
    }
    if shared.config.test_hooks {
        if let Some(ms) = req.test_sleep_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if Instant::now() >= deadline {
            return item_error(504, "deadline exceeded (batch)");
        }
    }
    let workload = req.workload();
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let bundle = shared.cache.bundle(req.model, req.dataset, req.sample, &workload);
        let result =
            shared.cache.evaluate(req.model, req.dataset, req.sample, &workload, &req.eval_options());
        (result, bundle.source_pixels)
    }));
    match run {
        Err(_) => item_error(500, "evaluation failed"),
        Ok((result, source_pixels)) => (
            200,
            JsonValue::object(vec![
                ("status", 200u64.into()),
                ("result", result_to_json(&result, source_pixels)),
            ]),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_sheds_above_capacity_and_drains_after_close() {
        // Pure queue-discipline test with synthetic connections: use a
        // real loopback listener only as a TcpStream factory.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mk = || {
            let _client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            let reader = BufReader::new(server_side.try_clone().unwrap());
            QueuedConn {
                reader,
                writer: server_side,
                anchor: Instant::now(),
                req_id: 0,
                served: 0,
            }
        };
        let q = ConnQueue::new(2);
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_err(), "third admit must shed");
        assert_eq!(q.depth(), 2);
        q.close();
        assert!(q.try_push(mk()).is_err(), "closed queue admits nothing");
        assert!(q.pop().is_some(), "backlog drains after close");
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "drained + closed ends the workers");
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_depth >= 1);
        assert!(c.workers.get() >= 1);
        assert!(c.deadline_ms > 0);
        assert!(c.max_requests_per_conn >= 1);
        assert!(c.idle_timeout_ms >= 1);
        assert!(!c.test_hooks);
    }
}
