//! The evaluation server: a bounded admission queue feeding a fixed
//! worker pool, with per-request deadlines and graceful drain.
//!
//! # Threading model
//!
//! `Server::run` launches one acceptor plus `workers` evaluation workers
//! as jobs on `diffy_core::parallel::run_jobs` — the same scoped-thread
//! pool the sweeps use, here with one long-lived loop per slot. The
//! acceptor polls a non-blocking listener, counts the connection, and
//! tries to enqueue it; workers block on the queue's condvar and drain it
//! until shutdown. There is no per-request thread spawn and no unbounded
//! buffering anywhere: memory and concurrency are fixed at startup.
//!
//! # Backpressure
//!
//! The queue holds at most `queue_depth` pending connections. When it is
//! full the acceptor answers `503 {"error":"queue full"}` immediately —
//! load sheds at the front door instead of growing latency without bound.
//!
//! # Deadlines
//!
//! Each request carries a deadline (its `deadline_ms`, clamped to the
//! server's `--deadline-ms`), measured from *accept* so queue wait counts
//! against it. Workers check it cooperatively between pipeline stages —
//! after parsing, after the trace build, after evaluation — and answer
//! `504` the moment it has passed; a request that expired while queued is
//! never evaluated at all.
//!
//! # Determinism
//!
//! Workers share one process-wide *bounded* `SweepCache`; evaluation
//! draws traces and term planes through it exactly like the sweep paths
//! do. Cached artifacts are pure functions of their keys and eviction
//! only ever forces recomputation, so a served result is bit-identical to
//! a direct `evaluate_network` call — under any concurrency, queue state
//! or cache history (asserted end-to-end in `tests/serve_e2e.rs`).

use crate::http::{read_request, write_json_response, BadRequest, Request, MAX_BODY_BYTES};
use crate::metrics::{Metrics, Stage};
use crate::protocol::{error_body, result_to_json, EvalRequest};
use diffy_core::json::{parse as parse_json, JsonValue};
use diffy_core::parallel::{run_jobs, Jobs};
use diffy_core::runner::SweepCache;
use diffy_core::trace;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration, mirrored by the CLI's `diffy serve` flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Evaluation worker count.
    pub workers: Jobs,
    /// Admission-queue capacity; a full queue answers 503.
    pub queue_depth: usize,
    /// Default and maximum per-request deadline, in milliseconds.
    pub deadline_ms: u64,
    /// Bounded-cache capacity: resident trace bundles (and weight sets).
    pub trace_cache: usize,
    /// Bounded-cache capacity: resident per-layer term-plane sets.
    pub plane_cache: usize,
    /// Honor the `test_sleep_ms` request field (tests only — lets the
    /// queueing and deadline paths be exercised deterministically).
    pub test_hooks: bool,
    /// Install a SIGTERM/SIGINT handler that triggers graceful drain
    /// (the CLI sets this; in-process tests leave it off).
    pub handle_signals: bool,
    /// Start a span capture on the global `diffy_core::trace` collector
    /// when the server runs. `GET /trace` serves the live capture as
    /// Chrome trace-event JSON; `diffy serve --trace-out` sets this and
    /// writes the drained capture at shutdown.
    pub trace_capture: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: Jobs::available(),
            queue_depth: 32,
            deadline_ms: 30_000,
            trace_cache: 64,
            plane_cache: 1024,
            test_hooks: false,
            handle_signals: false,
            trace_capture: false,
        }
    }
}

/// One accepted connection waiting for a worker.
struct QueuedConn {
    stream: TcpStream,
    accepted_at: Instant,
    /// Accept-order request id, tying trace spans to this connection.
    req_id: u64,
}

/// The bounded admission queue: `Mutex<VecDeque>` + condvar, closed at
/// shutdown so workers drain the backlog and exit.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    pending: VecDeque<QueuedConn>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { pending: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits a connection, or returns it when the queue is full/closed.
    fn try_push(&self, conn: QueuedConn) -> Result<(), QueuedConn> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || state.pending.len() >= self.capacity {
            return Err(conn);
        }
        state.pending.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed *and* drained.
    fn pop(&self) -> Option<QueuedConn> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = state.pending.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Stops admissions and wakes every waiting worker.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").pending.len()
    }
}

/// State shared between the acceptor, the workers and [`ServerHandle`]s.
struct Shared {
    queue: ConnQueue,
    metrics: Metrics,
    cache: SweepCache,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Source of accept-order request ids.
    req_seq: AtomicU64,
}

/// Process-global flag set by the SIGTERM/SIGINT handler. Signal-safe:
/// the handler does exactly one atomic store.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler() {
    unsafe extern "C" fn on_signal(_signum: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    type Handler = unsafe extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> isize;
    }
    // 15 = SIGTERM, 2 = SIGINT; std links libc on unix, so `signal` is
    // always available without adding a dependency.
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handler() {}

/// A bound evaluation server. [`Server::run`] blocks the calling thread
/// until shutdown; use [`Server::handle`] (or `POST /shutdown`, or
/// SIGTERM with [`ServeConfig::handle_signals`]) to trigger a graceful
/// drain from elsewhere.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful drain: stop accepting, finish queued requests,
    /// then let `run` return. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst) || SIGNAL_DRAIN.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds the listener and builds the shared state. The server does
    /// not accept connections until [`Server::run`].
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        assert!(config.queue_depth >= 1, "queue depth must be at least 1");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: ConnQueue::new(config.queue_depth),
            metrics: Metrics::new(),
            cache: SweepCache::bounded(config.trace_cache, config.plane_cache),
            config,
            shutdown: AtomicBool::new(false),
            req_seq: AtomicU64::new(0),
        });
        Ok(Server { listener, local_addr, shared })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// The configuration this server was bound with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Serves until graceful drain completes: acceptor + workers run as
    /// one scoped-thread pool; on shutdown the acceptor stops admitting,
    /// queued requests are still answered, then all threads join.
    pub fn run(self) -> io::Result<()> {
        if self.shared.config.handle_signals {
            install_signal_handler();
        }
        if self.shared.config.trace_capture {
            trace::Collector::global().start();
        }
        self.listener.set_nonblocking(true)?;
        let workers = self.shared.config.workers.get();
        let shared = &self.shared;
        let listener = &self.listener;

        let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(workers + 1);
        jobs.push(Box::new(move || accept_loop(shared, listener)));
        for _ in 0..workers {
            jobs.push(Box::new(move || worker_loop(shared)));
        }
        run_jobs(jobs, Jobs::new(workers + 1));
        Ok(())
    }
}

/// Accepts connections until drain, enqueueing or shedding each, then
/// closes the queue so workers finish the backlog and exit.
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || SIGNAL_DRAIN.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                let req_id = shared.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
                let conn = QueuedConn { stream, accepted_at: Instant::now(), req_id };
                if let Err(rejected) = shared.queue.try_push(conn) {
                    shared.metrics.queue_rejected_total.fetch_add(1, Ordering::Relaxed);
                    trace::instant("queue_shed", || vec![("req", req_id.into())]);
                    respond(shared, rejected.stream, 503, &error_body("queue full"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept failures (e.g. the peer reset before the
            // handshake finished) should not kill the server.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    shared.queue.close();
}

/// Drains the queue until it is closed and empty.
fn worker_loop(shared: &Shared) {
    while let Some(conn) = shared.queue.pop() {
        handle_connection(shared, conn);
    }
}

/// Writes a JSON response, counting it; write errors only mean the peer
/// went away, which the server must survive.
///
/// Ends with a *lingering close*: half-close the write side, then drain
/// whatever the peer already sent before dropping the socket. A 503 is
/// written before the request has been read at all — closing with unread
/// bytes in the receive buffer makes the kernel send RST, which can
/// discard the very response the peer is about to read.
fn respond(shared: &Shared, mut stream: TcpStream, status: u16, body: &str) {
    shared.metrics.record_response(status);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    if write_json_response(&mut stream, status, body).is_err() {
        return; // peer gone; nothing to linger for
    }
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    // Bounded: stop at the peer's close, a timeout, or one body's worth.
    while drained <= MAX_BODY_BYTES {
        match io::Read::read(&mut stream, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Parses and routes one connection.
fn handle_connection(shared: &Shared, conn: QueuedConn) {
    let QueuedConn { stream, accepted_at, req_id } = conn;
    let dequeued_at = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return, // connection already dead
    });
    let request = match read_request(&mut reader) {
        Err(_) => return, // peer vanished mid-request; nothing to answer
        Ok(Err(BadRequest { status, message })) => {
            respond(shared, stream, status, &error_body(&message));
            return;
        }
        Ok(Ok(req)) => req,
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/evaluate") => {
            handle_evaluate(shared, stream, &request, accepted_at, dequeued_at, req_id)
        }
        ("GET", "/trace") => {
            let body = trace::Collector::global().snapshot().to_chrome_json().to_json();
            respond(shared, stream, 200, &body);
        }
        ("GET", "/metrics") => {
            let body = shared
                .metrics
                .to_json(shared.queue.depth(), shared.config.queue_depth, shared.cache.stats())
                .to_json();
            respond(shared, stream, 200, &body);
        }
        ("GET", "/healthz") => {
            let draining = shared.shutdown.load(Ordering::SeqCst);
            let body = JsonValue::object(vec![
                ("status", JsonValue::from(if draining { "draining" } else { "ok" })),
            ])
            .to_json();
            respond(shared, stream, 200, &body);
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let body = JsonValue::object(vec![("draining", JsonValue::Bool(true))]).to_json();
            respond(shared, stream, 200, &body);
        }
        ("POST" | "GET", "/evaluate" | "/metrics" | "/healthz" | "/shutdown" | "/trace") => {
            respond(shared, stream, 405, &error_body("method not allowed"));
        }
        _ => respond(shared, stream, 404, &error_body("no such endpoint")),
    }
}

/// The `/evaluate` pipeline: parse → trace → evaluate → serialize, with a
/// cooperative deadline check between every stage.
///
/// A "request" trace span anchored at *accept* covers the whole pipeline
/// (tagged with the accept-order request id); each stage records both a
/// child span and its `/metrics` stage histogram, and the stages tile the
/// request end to end — queue wait through response write — so their
/// durations sum to the latency histogram's sample up to span overhead.
fn handle_evaluate(
    shared: &Shared,
    stream: TcpStream,
    request: &Request,
    accepted_at: Instant,
    dequeued_at: Instant,
    req_id: u64,
) {
    let started = accepted_at;
    let collector = trace::Collector::global();
    let _req_span =
        collector.span_from("request", collector.ns_of(accepted_at), || vec![("req", req_id.into())]);
    let queue_wait = dequeued_at.saturating_duration_since(accepted_at);
    shared.metrics.stage(Stage::QueueWait).record(queue_wait);
    collector.record_manual(
        Stage::QueueWait.name(),
        collector.ns_of(accepted_at),
        queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );

    let (status, body) = evaluate_stages(shared, request, accepted_at, dequeued_at);
    if status == 504 {
        shared.metrics.deadline_expired_total.fetch_add(1, Ordering::Relaxed);
    }

    let write_start = Instant::now();
    {
        let _s = collector.span(Stage::Write.name());
        respond(shared, stream, status, &body);
    }
    shared.metrics.stage(Stage::Write).record(write_start.elapsed());
    shared.metrics.latency.record(started.elapsed());
}

fn evaluate_stages(
    shared: &Shared,
    request: &Request,
    accepted_at: Instant,
    dequeued_at: Instant,
) -> (u16, String) {
    let collector = trace::Collector::global();
    let metrics = &shared.metrics;
    // Stage 0: decode. (Deadline: a request that waited out its budget in
    // the queue is answered 504 without being parsed at all.) The parse
    // stage is measured from dequeue so it covers the socket read too.
    let parse_result = (|| {
        let Ok(body_text) = std::str::from_utf8(&request.body) else {
            return Err((400, error_body("body must be UTF-8 JSON")));
        };
        let parsed = match parse_json(body_text) {
            Ok(v) => v,
            Err(e) => return Err((400, error_body(&format!("bad JSON: {e}")))),
        };
        EvalRequest::from_json(&parsed).map_err(|e| (400, error_body(&e)))
    })();
    let parse_elapsed = dequeued_at.elapsed();
    metrics.stage(Stage::Parse).record(parse_elapsed);
    collector.record_manual(
        Stage::Parse.name(),
        collector.ns_of(dequeued_at),
        parse_elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        Vec::new,
    );
    let eval_req = match parse_result {
        Ok(r) => r,
        Err(resp) => return resp,
    };

    let budget_ms = eval_req.deadline_ms.unwrap_or(shared.config.deadline_ms);
    let deadline = accepted_at + Duration::from_millis(budget_ms.min(shared.config.deadline_ms));
    let expired = |stage: &str| {
        (504, error_body(&format!("deadline exceeded ({stage})")))
    };
    if Instant::now() >= deadline {
        return expired("queued");
    }

    if shared.config.test_hooks {
        if let Some(ms) = eval_req.test_sleep_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    // Stage 1: materialize the trace (cache-shared across requests).
    let workload = eval_req.workload();
    let stage_start = Instant::now();
    let run = {
        let _s = collector.span(Stage::Trace.name());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.cache.bundle(eval_req.model, eval_req.dataset, eval_req.sample, &workload)
        }))
    };
    metrics.stage(Stage::Trace).record(stage_start.elapsed());
    let bundle = match run {
        Ok(b) => b,
        Err(_) => return (500, error_body("trace generation failed")),
    };
    if Instant::now() >= deadline {
        return expired("traced");
    }

    // Stage 2: price the trace on the requested architecture.
    let eval = eval_req.eval_options();
    let stage_start = Instant::now();
    let run = {
        let _s = collector.span(Stage::Evaluate.name());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.cache.evaluate(eval_req.model, eval_req.dataset, eval_req.sample, &workload, &eval)
        }))
    };
    metrics.stage(Stage::Evaluate).record(stage_start.elapsed());
    let result = match run {
        Ok(r) => r,
        Err(_) => return (500, error_body("evaluation failed")),
    };
    if Instant::now() >= deadline {
        return expired("evaluated");
    }

    // Stage 3: serialize — the exact runner result, deterministically.
    let stage_start = Instant::now();
    let body = {
        let _s = collector.span(Stage::Serialize.name());
        result_to_json(&result, bundle.source_pixels).to_json()
    };
    metrics.stage(Stage::Serialize).record(stage_start.elapsed());
    (200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_sheds_above_capacity_and_drains_after_close() {
        // Pure queue-discipline test with synthetic connections: use a
        // real loopback listener only as a TcpStream factory.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mk = || {
            let _client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            QueuedConn { stream: server_side, accepted_at: Instant::now(), req_id: 0 }
        };
        let q = ConnQueue::new(2);
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_err(), "third admit must shed");
        assert_eq!(q.depth(), 2);
        q.close();
        assert!(q.try_push(mk()).is_err(), "closed queue admits nothing");
        assert!(q.pop().is_some(), "backlog drains after close");
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "drained + closed ends the workers");
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_depth >= 1);
        assert!(c.workers.get() >= 1);
        assert!(c.deadline_ms > 0);
        assert!(!c.test_hooks);
    }
}
