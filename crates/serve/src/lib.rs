//! `diffy-serve` — the evaluation simulator as a long-lived service.
//!
//! A std-only HTTP/1.1 front end to the Diffy evaluation stack: JSON
//! requests name a `(model, dataset, sample, resolution, seed,
//! architecture, scheme, memory)` point of the paper's grid, a fixed
//! worker pool prices it through the shared bounded `SweepCache`, and the
//! response carries the exact per-layer/network counters the runner
//! produces — bit-identical to calling `evaluate_network` directly.
//!
//! Production semantics are first-class, not bolted on:
//!
//! * **Bounded admission** — at most `queue_depth` connections wait; the
//!   acceptor sheds overload with `503` instead of queueing unboundedly.
//! * **Keep-alive** — connections persist across requests (HTTP/1.1
//!   semantics); a worker serves one request then re-enqueues the
//!   connection through the same bounded queue, so a chatty client
//!   waits its turn like everyone else. Idle connections are *parked*
//!   with an event loop blocking on an `epoll` readiness poller — never
//!   pinned to a worker, never occupying an admission slot, costing no
//!   periodic sweeps — and closed after `idle_timeout_ms`; every
//!   connection turns over after `max_requests_per_conn`.
//! * **Sharding** — [`shard::ShardedServer`] runs N instances, each
//!   owning a consistent-hash partition of the evaluation key space,
//!   behind a thin router that forwards each request by its trace key's
//!   hash (`diffy serve --shards N`). Responses through the router are
//!   byte-identical to a single instance's.
//! * **Batching** — `POST /evaluate/batch` evaluates many grid points in
//!   one request, fanned over the worker pool through the shared cache
//!   (term planes build once per layer across the batch) under a
//!   server-wide fan cap; every item's result is bit-identical to its
//!   standalone `POST /evaluate`.
//! * **Deadlines** — each request's budget runs from its arrival;
//!   workers check it between pipeline stages and answer `504` the
//!   moment it passes (an expired queued request is never evaluated),
//!   and the socket read budget is the remaining deadline, re-armed
//!   before every read — a peer trickling bytes cannot stretch it.
//! * **Streaming sessions** — `POST /session` opens a stateful video
//!   session that retains the previous frame's activations; each `POST
//!   /session/{id}/frame` evaluates only the cross-frame delta through
//!   the temporal engine (paper §V) and reports cumulative savings
//!   against full re-evaluation. Sessions are LRU-bounded, expire when
//!   idle, and close via `DELETE /session/{id}`.
//! * **Graceful drain** — SIGTERM/SIGINT (opt-in), `POST /shutdown`, or
//!   [`ServerHandle::shutdown`] stop admissions, finish the backlog, and
//!   let [`Server::run`] return.
//! * **Live metrics** — `GET /metrics` reports request/response counts,
//!   queue depth, cache and session counters and latency percentiles.
//!
//! ```no_run
//! use diffy_serve::{Server, ServeConfig};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:7878".into(),
//!     ..ServeConfig::default()
//! })?;
//! println!("listening on {}", server.local_addr());
//! server.run()?; // blocks until graceful drain completes
//! # std::io::Result::Ok(())
//! ```
//!
//! Endpoints: `POST /evaluate`, `POST /evaluate/batch`, `POST /session`,
//! `POST /session/{id}/frame`, `DELETE /session/{id}`, `GET /metrics`,
//! `GET /healthz`, `POST /shutdown`. See DESIGN.md §"Service layer" for
//! the threading model and the determinism argument.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod load;
pub mod metrics;
pub mod poller;
pub mod protocol;
pub mod server;
pub mod session;
pub mod shard;

pub use client::{get, post, HttpResponse, KeepAliveClient, SessionClient};
pub use load::{batch_body, closed_loop, closed_loop_bodies, closed_loop_mode, LoadMode, LoadReport};
pub use metrics::{CloseReason, LatencyHistogram, Metrics};
pub use poller::Poller;
pub use protocol::{result_to_json, BatchRequest, EvalRequest, FrameRequest, SessionRequest};
pub use server::{ServeConfig, Server, ServerHandle};
pub use session::{SessionStats, SessionStore};
pub use shard::{ShardRing, ShardedConfig, ShardedHandle, ShardedServer};
