//! Minimal HTTP/1.1 framing on std I/O: request parsing with hard size
//! limits and response writing.
//!
//! The service speaks exactly the subset it needs — one request per
//! connection, `Content-Length` bodies, `Connection: close` on every
//! response. Keeping the parser tiny keeps the failure surface auditable:
//! anything outside the subset is a clean 400, never undefined behaviour.

use std::io::{self, BufRead, Write};

/// Largest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body, in bytes. Evaluation requests are a few
/// hundred bytes; anything close to this limit is abuse, not traffic.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as received.
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// A request the parser rejected, with the HTTP status the server should
/// answer with (400 or 413).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// Status code to respond with.
    pub status: u16,
    /// Human-readable reason, included in the error body.
    pub message: String,
}

impl BadRequest {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self { status, message: message.into() }
    }
}

/// Outcome of reading one request off a connection.
pub type ParseResult = io::Result<Result<Request, BadRequest>>;

/// Reads one HTTP/1.1 request. `Err(io::Error)` means the connection
/// failed (timeout, reset); `Ok(Err(BadRequest))` means the peer sent
/// something the subset rejects and should be answered with its status.
pub fn read_request(reader: &mut impl BufRead) -> ParseResult {
    let mut head_bytes = 0usize;
    let mut line = String::new();

    // Request line: METHOD SP PATH SP HTTP/1.1
    if read_crlf_line(reader, &mut line, &mut head_bytes)?.is_none() {
        return Ok(Err(BadRequest::new(400, "empty request")));
    }
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_string(), p.to_string(), v)
        }
        _ => return Ok(Err(BadRequest::new(400, "malformed request line"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Ok(Err(BadRequest::new(400, "unsupported HTTP version")));
    }

    // Headers until the empty line.
    let mut headers = Vec::new();
    loop {
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(Err(BadRequest::new(413, "request head too large")));
        }
        match read_crlf_line(reader, &mut line, &mut head_bytes)? {
            None => break,
            Some(()) => {
                let Some((name, value)) = line.split_once(':') else {
                    return Ok(Err(BadRequest::new(400, "malformed header")));
                };
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
    }

    // Body: exactly Content-Length bytes, if given. Multiple
    // Content-Length headers with conflicting values are the classic
    // request-smuggling shape (two parsers picking different framings) —
    // reject them; byte-identical repeats are tolerated per RFC 9110.
    let lengths: Vec<&str> =
        headers.iter().filter(|(k, _)| k == "content-length").map(|(_, v)| v.as_str()).collect();
    let body = match lengths.first() {
        None => Vec::new(),
        Some(&first) => {
            if lengths.iter().any(|&v| v != first) {
                return Ok(Err(BadRequest::new(400, "conflicting content-length headers")));
            }
            let Some(len) = parse_content_length(first) else {
                return Ok(Err(BadRequest::new(400, "bad content-length")));
            };
            if len > MAX_BODY_BYTES {
                return Ok(Err(BadRequest::new(413, "request body too large")));
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
    };

    Ok(Ok(Request { method, path, headers, body }))
}

/// Parses a `Content-Length` value: ASCII digits only. Stricter than
/// `usize::from_str`, which accepts a leading `+` ("+5" parses to 5) —
/// a sign is not valid header framing and another parser in the chain
/// may read it differently, so it is rejected outright.
fn parse_content_length(v: &str) -> Option<usize> {
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    v.parse().ok()
}

/// Reads one `\r\n`-terminated line into `line` (stripped); `None` marks
/// the empty line that ends the head.
fn read_crlf_line(
    reader: &mut impl BufRead,
    line: &mut String,
    head_bytes: &mut usize,
) -> io::Result<Option<()>> {
    line.clear();
    let n = io::Read::take(&mut *reader, MAX_HEAD_BYTES as u64 + 1).read_line(line)?;
    if n == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-head"));
    }
    *head_bytes += n;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(if line.is_empty() { None } else { Some(()) })
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one JSON response and flushes. Every response closes the
/// connection (`Connection: close`), keeping the protocol one-shot.
pub fn write_json_response(writer: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status,
        reason(status),
        body.len(),
        body
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn parse(raw: &str) -> Result<Request, BadRequest> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
            .expect("no io error on in-memory input")
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"k\": true}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/evaluate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"k\": true}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req =
            parse("POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET  /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(e.status, 400, "{raw:?}");
        }
    }

    #[test]
    fn rejects_bad_headers_and_lengths() {
        assert_eq!(parse("GET / HTTP/1.1\r\nnocolon\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().status,
            400
        );
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse(&huge).unwrap_err().status, 413);
    }

    #[test]
    fn rejects_conflicting_content_lengths() {
        // Two different framings of the same body: a smuggling probe.
        let e = parse(
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 11\r\n\r\nok",
        )
        .unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("conflicting"), "{}", e.message);
    }

    #[test]
    fn tolerates_repeated_identical_content_lengths() {
        // RFC 9110 §8.6: identical repeated values may be accepted.
        let req = parse(
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok",
        )
        .unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn rejects_signed_content_lengths() {
        // usize::from_str accepts "+2"; header framing must not.
        for v in ["+2", "-2", " +2", "2 2", "0x2", "2.0"] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {v}\r\n\r\nok");
            let e = parse(&raw).unwrap_err();
            assert_eq!(e.status, 400, "value {v:?} must be rejected");
        }
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\nx: y\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(&raw).unwrap_err().status, 413);
    }

    #[test]
    fn truncated_request_is_an_io_error() {
        let mut r = BufReader::new(Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec()));
        assert!(read_request(&mut r).is_err());
    }

    #[test]
    fn response_framing_is_exact() {
        let mut out = Vec::new();
        write_json_response(&mut out, 503, "{\"error\":\"busy\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"busy\"}"));
    }
}
