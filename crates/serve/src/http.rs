//! Minimal HTTP/1.1 framing on std I/O: request parsing with hard size
//! limits and response writing.
//!
//! The service speaks exactly the subset it needs — `Content-Length`
//! bodies on persistent (keep-alive) or one-shot connections. Keeping the
//! parser tiny keeps the failure surface auditable: anything outside the
//! subset is a clean 400, never undefined behaviour. Under keep-alive the
//! framing rules are load-bearing, not cosmetic: a byte miscounted on one
//! request becomes the *head of the next request* on the same connection,
//! so everything ambiguous (whitespace-padded header names,
//! `Transfer-Encoding`, conflicting lengths, unterminated lines) is
//! rejected outright and the connection closed.

use std::io::{self, BufRead, Write};

/// Largest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Largest accepted request body, in bytes. Evaluation requests are a few
/// hundred bytes and batches a few KiB; anything close to this limit is
/// abuse, not traffic.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// Number of leading empty lines tolerated before the request line
/// (RFC 9112 §2.2: a server SHOULD ignore at least one).
const MAX_LEADING_BLANKS: usize = 4;

/// The HTTP version a request was framed under. Keep-alive defaults
/// differ: HTTP/1.1 persists unless `Connection: close`, HTTP/1.0 closes
/// unless `Connection: keep-alive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0`.
    Http10,
    /// `HTTP/1.1`.
    Http11,
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as received.
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Protocol version from the request line.
    pub version: Version,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open after the
    /// response: `Connection: close` always closes, `Connection:
    /// keep-alive` always persists, otherwise the version's default
    /// applies (persist on 1.1, close on 1.0). Each `Connection` value is
    /// a comma-separated token list per RFC 9110 §7.6.1, and repeated
    /// `Connection` field lines combine into one list (RFC 9110 §5.3) —
    /// consulting only the first line would let `Connection: keep-alive`
    /// followed by `Connection: close` hold a connection the peer asked
    /// to close.
    pub fn keep_alive(&self) -> bool {
        let mut keep = false;
        for (k, v) in &self.headers {
            if k != "connection" {
                continue;
            }
            for token in v.split(',').map(str::trim) {
                if token.eq_ignore_ascii_case("close") {
                    return false;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
        }
        keep || self.version == Version::Http11
    }

    /// The request path split into its non-empty segments — the routing
    /// substrate for parameterized paths like `/session/{id}/frame`.
    /// See [`path_segments`].
    pub fn path_segments(&self) -> Vec<&str> {
        path_segments(&self.path)
    }
}

/// Splits a request path into its non-empty `/`-separated segments:
/// `"/session/s-1/frame"` → `["session", "s-1", "frame"]`. Empty
/// segments (leading, trailing, or doubled slashes) are dropped, so
/// `"/session//s-1/"` routes like `"/session/s-1"` — match arms see one
/// canonical shape per route.
pub fn path_segments(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

/// A request the parser rejected, with the HTTP status the server should
/// answer with (400 or 413). Framing-level rejections poison the
/// connection — the next request's boundary can no longer be trusted —
/// so the server answers and then closes, never keeps alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// Status code to respond with.
    pub status: u16,
    /// Human-readable reason, included in the error body.
    pub message: String,
}

impl BadRequest {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self { status, message: message.into() }
    }
}

/// How reading a request off a connection failed before a request (or a
/// rejectable `BadRequest`) materialized.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed — or stayed silent past the read timeout — before
    /// sending a single request byte. Under keep-alive this is the
    /// *normal* end of a connection, not an error to alarm on.
    Idle,
    /// The connection failed mid-request: reset, timeout or EOF after
    /// some head bytes had already arrived. Nothing can be answered.
    Io(io::Error),
}

/// Outcome of reading one request off a connection.
pub type ParseResult = Result<Result<Request, BadRequest>, ReadError>;

/// Outcome of reading one head line.
enum Line {
    /// The empty line ending the head (or a tolerated leading blank).
    Blank,
    /// A non-empty line, stripped of its terminator, left in `line`.
    Text,
    /// The line ran past the head limit without a terminator.
    TooLong,
    /// The line carried a control byte outside the CRLF terminator — a
    /// bare CR, a NUL, an embedded LF-smuggle — which RFC 9112 §2.2
    /// requires rejecting rather than reinterpreting.
    Ctl,
    /// Clean EOF before any byte of this line.
    Eof,
}

/// Reads one HTTP/1.1 request. [`ReadError::Idle`] means the peer closed
/// (or timed out) between requests; [`ReadError::Io`] means the
/// connection failed mid-request; `Ok(Err(BadRequest))` means the peer
/// sent something the subset rejects and should be answered with its
/// status — and, because framing is no longer trustworthy, closed.
pub fn read_request(reader: &mut impl BufRead) -> ParseResult {
    read_request_with(reader, &mut || Ok(()))
}

/// [`read_request`] with a `tick` hook that runs before **every** socket
/// read — each head-line refill and each body chunk. The hook can re-arm
/// a shrinking read timeout and abort the request by returning `Err`
/// once an absolute deadline has passed. A per-read timeout alone cannot
/// bound a request's wall-clock cost: a peer trickling one byte just
/// under the timeout keeps every individual read succeeding, so only a
/// check *between* reads cuts it off.
pub fn read_request_with(
    reader: &mut impl BufRead,
    tick: &mut dyn FnMut() -> io::Result<()>,
) -> ParseResult {
    let mut head_bytes = 0usize;
    let mut line = String::new();

    // Request line: METHOD SP PATH SP HTTP/1.x — after at most a few
    // tolerated leading CRLFs (RFC 9112 §2.2).
    let mut blanks = 0usize;
    loop {
        let first = blanks == 0 && head_bytes == 0;
        match read_head_line(reader, &mut line, &mut head_bytes, first, tick)? {
            Line::Eof => return Err(ReadError::Idle),
            Line::TooLong => return Ok(Err(BadRequest::new(413, "request line too long"))),
            Line::Ctl => return Ok(Err(BadRequest::new(400, "control byte in request head"))),
            Line::Blank => {
                blanks += 1;
                if blanks > MAX_LEADING_BLANKS {
                    return Ok(Err(BadRequest::new(400, "empty request")));
                }
            }
            Line::Text => break,
        }
    }
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_string(), p.to_string(), v)
        }
        _ => return Ok(Err(BadRequest::new(400, "malformed request line"))),
    };
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        _ => return Ok(Err(BadRequest::new(400, "unsupported HTTP version"))),
    };

    // Headers until the empty line.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(Err(BadRequest::new(413, "request head too large")));
        }
        match read_head_line(reader, &mut line, &mut head_bytes, false, tick)? {
            Line::Eof => return Err(ReadError::Io(closed_mid_head())),
            Line::TooLong => return Ok(Err(BadRequest::new(413, "header line too long"))),
            Line::Ctl => return Ok(Err(BadRequest::new(400, "control byte in request head"))),
            Line::Blank => break,
            Line::Text => {
                let Some((name, value)) = line.split_once(':') else {
                    return Ok(Err(BadRequest::new(400, "malformed header")));
                };
                // RFC 9112 §5.1: no whitespace between the field name and
                // the colon. `Content-Length : 5` is a smuggling desync
                // vector — a lenient parser reads a length this parser
                // ignored — so the name must be an exact token. This also
                // rejects obs-fold continuations (leading whitespace).
                if !is_token(name) {
                    return Ok(Err(BadRequest::new(400, "malformed header name")));
                }
                // Trim OWS only (SP / HTAB, RFC 9110 §5.6.3). `str::trim`
                // strips every Unicode White_Space character, so a
                // Content-Length of "\u{a0}5" would quietly become "5"
                // here while a byte-exact parser elsewhere rejects it —
                // two framings of one message.
                let value = value.trim_matches([' ', '\t']);
                headers.push((name.to_ascii_lowercase(), value.to_string()));
            }
        }
    }

    // Transfer-Encoding is not part of the subset. Ignoring it would be
    // fatal under keep-alive: a chunked body this parser never consumed
    // would be replayed as the head of the "next request".
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Ok(Err(BadRequest::new(400, "transfer-encoding not supported")));
    }

    // Body: exactly Content-Length bytes, if given. Multiple
    // Content-Length headers with conflicting values are the classic
    // request-smuggling shape (two parsers picking different framings) —
    // reject them; byte-identical repeats are tolerated per RFC 9110.
    let lengths: Vec<&str> =
        headers.iter().filter(|(k, _)| k == "content-length").map(|(_, v)| v.as_str()).collect();
    let body = match lengths.first() {
        None => Vec::new(),
        Some(&first) => {
            if lengths.iter().any(|&v| v != first) {
                return Ok(Err(BadRequest::new(400, "conflicting content-length headers")));
            }
            let Some(len) = parse_content_length(first) else {
                return Ok(Err(BadRequest::new(400, "bad content-length")));
            };
            if len > MAX_BODY_BYTES as u128 {
                return Ok(Err(BadRequest::new(413, "request body too large")));
            }
            let len = len as usize; // ≤ MAX_BODY_BYTES: usize-exact on any target
            // Chunked (not `read_exact`) so `tick` runs between reads:
            // `read_exact` loops internally and would let a trickling
            // peer stretch one body across MAX_BODY_BYTES timeouts.
            let mut body = vec![0u8; len];
            let mut filled = 0usize;
            while filled < len {
                tick().map_err(ReadError::Io)?;
                match reader.read(&mut body[filled..]) {
                    Ok(0) => {
                        return Err(ReadError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-body",
                        )))
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(ReadError::Io(e)),
                }
            }
            body
        }
    };

    Ok(Ok(Request { method, path, version, headers, body }))
}

fn closed_mid_head() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-head")
}

/// RFC 9110 token: the only characters legal in a header field name.
fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
        })
}

/// Parses a `Content-Length` value: ASCII digits only. Stricter than
/// `usize::from_str`, which accepts a leading `+` ("+5" parses to 5) —
/// a sign is not valid header framing and another parser in the chain
/// may read it differently, so it is rejected outright.
///
/// Returns the value in `u128` so the *caller* classifies magnitude: a
/// syntactically valid length that merely overflows the native integer
/// is "body too large" (413), not "malformed" (400) — `parse::<usize>()`
/// conflated the two, and on a 32-bit target would have 400'd lengths a
/// 64-bit peer considers well-formed. Values past even `u128` saturate,
/// which the 413 comparison classifies identically.
fn parse_content_length(v: &str) -> Option<u128> {
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some(v.parse::<u128>().unwrap_or(u128::MAX))
}

/// Reads one `\r\n`-terminated head line into `line` (stripped),
/// consulting `tick` before every underlying read.
///
/// The per-line read is capped at `MAX_HEAD_BYTES + 1` bytes; hitting the
/// cap *without* a terminator is [`Line::TooLong`] — previously the
/// capped tail was silently parsed as a separate header (a framing split
/// no two parsers would ever agree on). EOF after partial bytes is an
/// I/O error, never a valid line. `first` marks the very first read of a
/// request, where a timeout with nothing buffered means "peer idle", not
/// "request truncated".
fn read_head_line(
    reader: &mut impl BufRead,
    line: &mut String,
    head_bytes: &mut usize,
    first: bool,
    tick: &mut dyn FnMut() -> io::Result<()>,
) -> Result<Line, ReadError> {
    line.clear();
    let mut raw: Vec<u8> = Vec::new();
    // Loop over `fill_buf` (not `read_line`, whose internal loop would
    // run read after read without ever consulting `tick`): each pass
    // ticks, refills, and consumes up to the line terminator.
    let terminated = loop {
        if let Err(e) = tick() {
            return Err(ReadError::Io(e));
        }
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // A timeout (or reset) before any byte of the first line
                // is the idle end of a keep-alive connection; partial
                // bytes mark a genuinely truncated request.
                let idle_kind = matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::UnexpectedEof
                );
                return if first && raw.is_empty() && idle_kind {
                    Err(ReadError::Idle)
                } else {
                    Err(ReadError::Io(e))
                };
            }
        };
        if available.is_empty() {
            if raw.is_empty() {
                return Ok(Line::Eof);
            }
            break false; // EOF mid-line
        }
        let cap_left = (MAX_HEAD_BYTES + 1).saturating_sub(raw.len());
        if cap_left == 0 {
            break false; // cap exhausted without a terminator
        }
        let chunk = &available[..available.len().min(cap_left)];
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            raw.extend_from_slice(&chunk[..=pos]);
            reader.consume(pos + 1);
            break true;
        }
        let taken = chunk.len();
        raw.extend_from_slice(chunk);
        reader.consume(taken);
    };
    *head_bytes += raw.len();
    if !terminated {
        // No terminator: either the per-line cap was hit (overlong line)
        // or the peer died mid-line. Distinguish by whether the cap was
        // exhausted.
        return if raw.len() > MAX_HEAD_BYTES {
            Ok(Line::TooLong)
        } else {
            Err(ReadError::Io(closed_mid_head()))
        };
    }
    let Ok(text) = std::str::from_utf8(&raw) else {
        return Err(ReadError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            "non-UTF-8 bytes in request head",
        )));
    };
    line.push_str(text);
    // Strip exactly one terminator: `\r\n` or a tolerated bare `\n`.
    // Anything else — a stray trailing `\r\r\n`, an interior bare CR, a
    // NUL — is a control byte a lenient parser downstream might treat as
    // a line break or a truncation point, i.e. a framing desync vector.
    // RFC 9112 §2.2: bare CR outside the terminator must be rejected.
    if line.ends_with('\n') {
        line.pop();
    }
    if line.ends_with('\r') {
        line.pop();
    }
    if line.bytes().any(|b| b < 0x20 && b != b'\t') {
        return Ok(Line::Ctl);
    }
    Ok(if line.is_empty() { Line::Blank } else { Line::Text })
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one JSON response and flushes, announcing the connection
/// disposition the server decided: `Connection: keep-alive` when the
/// connection will serve another request, `Connection: close` when the
/// server will close after this response.
pub fn write_json_response_conn(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    // Render first, write once: `write!` at an unbuffered socket emits a
    // syscall per format fragment, and on a keep-alive connection those
    // small segmented writes stall on Nagle + delayed-ACK.
    let response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        body
    );
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

/// Writes one JSON response that closes the connection — the one-shot
/// protocol, kept for shed/error paths and compatibility.
pub fn write_json_response(writer: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_json_response_conn(writer, status, body, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn read(raw: &[u8]) -> ParseResult {
        read_request(&mut BufReader::new(Cursor::new(raw.to_vec())))
    }

    fn parse(raw: &str) -> Result<Request, BadRequest> {
        match read(raw.as_bytes()) {
            Ok(r) => r,
            Err(e) => panic!("unexpected read error on in-memory input: {e:?}"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"k\": true}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/evaluate");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"k\": true}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req =
            parse("POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_header() {
        // (request, expected keep_alive)
        let cases = [
            ("GET / HTTP/1.1\r\n\r\n", true),
            ("GET / HTTP/1.0\r\n\r\n", false),
            ("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            ("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false),
            ("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            ("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", true),
            // Token lists: close anywhere wins.
            ("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n", false),
            ("GET / HTTP/1.0\r\nConnection: foo, keep-alive\r\n\r\n", true),
            // Unknown tokens fall back to the version default.
            ("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n", true),
            ("GET / HTTP/1.0\r\nConnection: upgrade\r\n\r\n", false),
        ];
        for (raw, want) in cases {
            assert_eq!(parse(raw).unwrap().keep_alive(), want, "{raw:?}");
        }
    }

    #[test]
    fn leading_blank_lines_are_tolerated() {
        let req = parse("\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/metrics");
        // …but not without bound.
        let raw = format!("{}GET / HTTP/1.1\r\n\r\n", "\r\n".repeat(MAX_LEADING_BLANKS + 1));
        assert_eq!(parse(&raw).unwrap_err().status, 400);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET  /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(e.status, 400, "{raw:?}");
        }
    }

    #[test]
    fn rejects_bad_headers_and_lengths() {
        assert_eq!(parse("GET / HTTP/1.1\r\nnocolon\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().status,
            400
        );
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse(&huge).unwrap_err().status, 413);
    }

    #[test]
    fn rejects_whitespace_before_header_colon() {
        // RFC 9112 §5.1: `Content-Length : 5` must be 400, not silently
        // re-trimmed into a length a downstream parser may disagree on.
        for raw in [
            "POST / HTTP/1.1\r\nContent-Length : 2\r\n\r\nok",
            "POST / HTTP/1.1\r\nContent-Length\t: 2\r\n\r\nok",
            "POST / HTTP/1.1\r\n Content-Length: 2\r\n\r\nok", // obs-fold shape
            "GET / HTTP/1.1\r\nx y: z\r\n\r\n",
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(e.status, 400, "{raw:?}");
            assert!(e.message.contains("header"), "{raw:?}: {}", e.message);
        }
    }

    #[test]
    fn rejects_transfer_encoding_outright() {
        // An unconsumed chunked body would be replayed as the next
        // request's head under keep-alive.
        for te in ["chunked", "identity", "gzip"] {
            let raw = format!("POST / HTTP/1.1\r\nTransfer-Encoding: {te}\r\n\r\n");
            let e = parse(&raw).unwrap_err();
            assert_eq!(e.status, 400, "Transfer-Encoding: {te}");
            assert!(e.message.contains("transfer-encoding"), "{}", e.message);
        }
        // Even alongside a Content-Length (the classic TE.CL smuggle).
        let e = parse(
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 2\r\n\r\nok",
        )
        .unwrap_err();
        assert_eq!(e.status, 400);
    }

    #[test]
    fn rejects_conflicting_content_lengths() {
        // Two different framings of the same body: a smuggling probe.
        let e = parse(
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 11\r\n\r\nok",
        )
        .unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("conflicting"), "{}", e.message);
    }

    #[test]
    fn tolerates_repeated_identical_content_lengths() {
        // RFC 9110 §8.6: identical repeated values may be accepted.
        let req = parse(
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok",
        )
        .unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn rejects_signed_content_lengths() {
        // usize::from_str accepts "+2"; header framing must not.
        for v in ["+2", "-2", " +2", "2 2", "0x2", "2.0"] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {v}\r\n\r\nok");
            let e = parse(&raw).unwrap_err();
            assert_eq!(e.status, 400, "value {v:?} must be rejected");
        }
    }

    #[test]
    fn fuzz_regression_bare_cr_in_head_is_400() {
        // Found by the structured HTTP fuzzer (CRLF games): an interior
        // bare CR survived into the parsed header value (and a trailing
        // run of CRs was silently stripped), so `val\rX-Smuggled: y` was
        // one header to this parser and two to any CR-tolerant parser
        // downstream. RFC 9112 §2.2: bare CR must be rejected.
        for raw in [
            "GET / HTTP/1.1\r\nx: val\rX-Smuggled: y\r\n\r\n",
            "GET / HTTP/1.1\r\r\n\r\n",
            "GET / HTTP/1.1\r\nx: y\r\r\n\r\n",
            "GET \r/ HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nx: a\u{0}b\r\n\r\n", // NUL is just as toxic
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(e.status, 400, "{raw:?}");
            assert!(e.message.contains("control byte"), "{raw:?}: {}", e.message);
        }
        // Tabs are legal OWS inside header values, not control noise.
        let req = parse("GET / HTTP/1.1\r\nx: a\tb\r\n\r\n").unwrap();
        assert_eq!(req.header("x"), Some("a\tb"));
    }

    #[test]
    fn fuzz_regression_repeated_connection_headers_combine() {
        // Found by the protocol-object fuzzer: `keep_alive()` consulted
        // only the *first* Connection field line, so `Connection:
        // keep-alive` + `Connection: close` kept a connection the peer
        // asked to close. RFC 9110 §5.3: repeated field lines combine.
        let cases = [
            ("GET / HTTP/1.1\r\nConnection: keep-alive\r\nConnection: close\r\n\r\n", false),
            ("GET / HTTP/1.1\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n", false),
            ("GET / HTTP/1.0\r\nConnection: foo\r\nConnection: keep-alive\r\n\r\n", true),
            ("GET / HTTP/1.0\r\nConnection: keep-alive\r\nConnection: Close\r\n\r\n", false),
        ];
        for (raw, want) in cases {
            assert_eq!(parse(raw).unwrap().keep_alive(), want, "{raw:?}");
        }
    }

    #[test]
    fn fuzz_regression_content_length_overflow_is_413_not_400() {
        // Found by the Content-Length corruption mutator: a digits-only
        // value too large for the native integer fell out of
        // `parse::<usize>()` as "malformed" (400). It is well-formed and
        // huge — the same class as MAX_BODY_BYTES + 1, which already
        // answered 413 — and on a 32-bit target the old path reclassified
        // lengths a 64-bit peer parses fine.
        for v in [
            "18446744073709551616",                     // 2^64
            "99999999999999999999999999999999999999",   // > u128 parse width
            &format!("{}", u64::MAX),
        ] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {v}\r\n\r\n");
            let e = parse(&raw).unwrap_err();
            assert_eq!(e.status, 413, "value {v:?}: {}", e.message);
        }
    }

    #[test]
    fn fuzz_regression_unicode_whitespace_is_not_ows() {
        // Found by the header-splice mutator: `str::trim` stripped any
        // Unicode White_Space from header values, so "\u{a0}5" became a
        // framing length this parser accepted and byte-exact parsers
        // reject. Only SP and HTAB are OWS (RFC 9110 §5.6.3).
        let raw = "POST / HTTP/1.1\r\nContent-Length:\u{a0}5\r\n\r\nhello";
        let e = parse(raw).unwrap_err();
        assert_eq!(e.status, 400, "{}", e.message);
        // NBSP inside a non-framing value is preserved, not trimmed.
        let req = parse("GET / HTTP/1.1\r\nx: \u{a0}y\r\n\r\n").unwrap();
        assert_eq!(req.header("x"), Some("\u{a0}y"));
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\nx: y\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(&raw).unwrap_err().status, 413);
    }

    #[test]
    fn header_line_exactly_at_the_limit_is_413_not_split() {
        // One header line of exactly MAX_HEAD_BYTES bytes including its
        // CRLF: a complete line, but the head is over budget — 413.
        let req_line = "GET / HTTP/1.1\r\n";
        let pad = MAX_HEAD_BYTES - "x-pad: ".len() - 2; // 2 = CRLF
        let raw = format!("{req_line}x-pad: {}\r\n\r\n", "a".repeat(pad));
        let e = parse(&raw).unwrap_err();
        assert_eq!(e.status, 413, "{}", e.message);
    }

    #[test]
    fn header_line_past_the_limit_is_413_not_two_headers() {
        // A single unterminated line longer than the per-line cap used to
        // be silently split in two, with the tail parsed as a separate
        // header. It must be one 413, never two headers.
        let raw = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\nx-smuggled: y\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES + 10)
        );
        let e = parse(&raw).unwrap_err();
        assert_eq!(e.status, 413, "{}", e.message);
        assert!(e.message.contains("too long"), "{}", e.message);
    }

    #[test]
    fn overlong_request_line_is_413() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES + 10));
        let e = parse(&raw).unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn clean_eof_before_any_byte_is_idle() {
        assert!(matches!(read(b""), Err(ReadError::Idle)));
    }

    #[test]
    fn eof_mid_head_is_an_io_error() {
        for raw in [&b"GET / HT"[..], b"GET / HTTP/1.1\r\nHost: x"] {
            assert!(matches!(read(raw), Err(ReadError::Io(_))), "{raw:?}");
        }
    }

    #[test]
    fn truncated_request_is_an_io_error() {
        let r = read(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert!(matches!(r, Err(ReadError::Io(_))));
    }

    #[test]
    fn tick_runs_before_every_read_and_a_clean_parse_is_unaffected() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut calls = 0usize;
        let mut tick = || {
            calls += 1;
            Ok(())
        };
        let req = read_request_with(&mut BufReader::new(Cursor::new(raw.to_vec())), &mut tick)
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
        // One tick per head line (request line, one header, the blank)
        // plus at least one for the body.
        assert!(calls >= 4, "tick ran {calls} times");
    }

    #[test]
    fn tick_abort_severs_a_trickled_head() {
        // A deadline hook that fails on its first consultation: the read
        // must abort as an I/O error before parsing anything.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut tick =
            || Err(io::Error::new(io::ErrorKind::TimedOut, "deadline exceeded during read"));
        let r = read_request_with(&mut BufReader::new(Cursor::new(raw.to_vec())), &mut tick);
        match r {
            Err(ReadError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected an I/O abort, got {other:?}"),
        }
    }

    #[test]
    fn tick_abort_severs_a_trickled_body() {
        // Head parses under budget (ticks 1–3: request line, header,
        // blank line), then the deadline passes before the body read.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut calls = 0usize;
        let mut tick = || {
            calls += 1;
            if calls >= 4 {
                Err(io::Error::new(io::ErrorKind::TimedOut, "deadline exceeded during read"))
            } else {
                Ok(())
            }
        };
        let r = read_request_with(&mut BufReader::new(Cursor::new(raw.to_vec())), &mut tick);
        assert!(matches!(r, Err(ReadError::Io(_))), "body read must abort, got {r:?}");
    }

    #[test]
    fn response_framing_is_exact() {
        let mut out = Vec::new();
        write_json_response(&mut out, 503, "{\"error\":\"busy\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"busy\"}"));
    }

    #[test]
    fn keep_alive_response_announces_disposition() {
        let mut out = Vec::new();
        write_json_response_conn(&mut out, 200, "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close"));
    }

    #[test]
    fn path_segments_canonicalize_slashes() {
        assert_eq!(path_segments("/session/s-1/frame"), vec!["session", "s-1", "frame"]);
        assert_eq!(path_segments("/session//s-1/"), vec!["session", "s-1"]);
        assert_eq!(path_segments("/"), Vec::<&str>::new());
        assert_eq!(path_segments(""), Vec::<&str>::new());
        assert_eq!(path_segments("evaluate"), vec!["evaluate"]);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        // Two requests in one byte stream: after the first is read, the
        // reader must sit exactly at the head of the second.
        let raw = b"POST /evaluate HTTP/1.1\r\nContent-Length: 2\r\n\r\nokGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!((first.method.as_str(), first.body.as_slice()), ("POST", &b"ok"[..]));
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!((second.method.as_str(), second.path.as_str()), ("GET", "/metrics"));
        assert!(matches!(read_request(&mut reader), Err(ReadError::Idle)));
    }
}
