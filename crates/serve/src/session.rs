//! Stateful streaming-video sessions: the serve layer's temporal-Diffy
//! subsystem (paper §V, ROADMAP open item 3).
//!
//! A session pins the identity of one synthetic video stream (a
//! [`VideoSpec`] plus a [`TemporalMode`]) and retains the previous
//! frame's activation traces between requests, so each `POST
//! /session/{id}/frame` evaluates only the cross-frame *delta* through
//! `diffy_sim::temporal_network` — the déjà-vu-free way to serve video —
//! while a per-frame ledger accumulates how much the temporal engine
//! saved against full re-evaluation.
//!
//! The [`SessionStore`] is the stateful core: a mutex-guarded id map
//! with the same LRU discipline as `diffy_core::parallel::BoundedCache`
//! (monotonic-tick recency, capacity-bound eviction) plus per-session
//! idle deadlines swept by the server's parker job. Locking is
//! two-level and never nested the other way: the store lock covers only
//! id lookup/insert/remove/sweep (microseconds), and each session owns
//! a private state mutex held across its frame evaluation — pipelined
//! frames on one keep-alive connection serialize per session while
//! distinct sessions fan freely across the worker pool.
//!
//! Every request handler here is a pure function of `(store state,
//! request, now)` returning `(status, body)` — the server wires them to
//! routes, the fuzz harness drives them directly, and the accounting
//! obeys a conservation law the metrics tests close:
//! `created == closed + expired + evicted + open`.

use crate::protocol::{
    cycles_to_json, error_body, scene_name, temporal_mode_name, FrameRequest, SessionRequest,
};
use diffy_core::json::{parse, JsonValue};
use diffy_core::runner::{SweepCache, TraceBundle, VideoSpec};
use diffy_sim::TemporalMode;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One live streaming session: immutable stream identity plus the
/// mutable temporal state guarded by its own lock.
pub struct Session {
    /// Wire id, `s-<n>`.
    pub id: String,
    /// The video stream this session walks.
    pub spec: VideoSpec,
    /// Temporal engine mode (Diffy-T or Diffy-ST).
    pub mode: TemporalMode,
    state: Mutex<SessionState>,
}

/// The retained cross-frame state: what makes frame *t* cheap.
struct SessionState {
    /// Index of the next frame to serve.
    next_frame: usize,
    /// Frame *t−1*'s activation traces (layer imaps), the reference the
    /// temporal delta is taken against. `None` until frame 0 is served.
    prev: Option<Arc<TraceBundle>>,
    /// Cumulative cycles actually served (frame 0 full + deltas after).
    served_cycles: u64,
    /// Cumulative cycles full re-evaluation of every frame would cost.
    baseline_cycles: u64,
}

impl Session {
    /// Frames served so far.
    pub fn frames_served(&self) -> usize {
        self.state.lock().expect("session state poisoned").next_frame
    }
}

/// Point-in-time counters of a [`SessionStore`], rendered under the
/// `sessions` key of `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Sessions currently live.
    pub open: usize,
    /// Configured capacity bound.
    pub capacity: usize,
    /// Sessions ever created.
    pub created: u64,
    /// Sessions removed by explicit `DELETE`.
    pub closed: u64,
    /// Sessions removed by the idle sweep.
    pub expired: u64,
    /// Sessions removed to admit a new one at capacity.
    pub evicted: u64,
    /// Id lookups that found a live session.
    pub hits: u64,
    /// Id lookups that found nothing (unknown, expired, or malformed).
    pub misses: u64,
    /// Frames evaluated across all sessions.
    pub frames: u64,
}

impl SessionStats {
    /// The accounting conservation law: every session ever created is
    /// either still open or left through exactly one exit.
    pub fn conserved(&self) -> bool {
        self.created == self.closed + self.expired + self.evicted + self.open as u64
    }
}

/// Bounded, idle-expiring store of live sessions.
pub struct SessionStore {
    inner: Mutex<Inner>,
    capacity: usize,
    idle: Duration,
}

struct Inner {
    map: HashMap<u64, Entry>,
    /// Monotonic recency clock (the BoundedCache idiom): bumped on every
    /// create/touch; the entry with the smallest stamp is the LRU.
    tick: u64,
    next_id: u64,
    created: u64,
    closed: u64,
    expired: u64,
    evicted: u64,
    hits: u64,
    misses: u64,
    frames: u64,
}

struct Entry {
    session: Arc<Session>,
    last_used: u64,
    deadline: Instant,
}

impl Inner {
    fn touch(&mut self, key: u64, now: Instant, idle: Duration) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&key) {
            e.last_used = tick;
            e.deadline = now + idle;
        }
    }
}

impl SessionStore {
    /// An empty store holding at most `capacity` sessions, each expiring
    /// after `idle` without a request.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `idle` is zero.
    pub fn new(capacity: usize, idle: Duration) -> Self {
        assert!(capacity > 0, "session capacity must be at least 1");
        assert!(!idle.is_zero(), "session idle timeout must be positive");
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                next_id: 0,
                created: 0,
                closed: 0,
                expired: 0,
                evicted: 0,
                hits: 0,
                misses: 0,
                frames: 0,
            }),
            capacity,
            idle,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("session store poisoned")
    }

    /// Creates a session, evicting the least-recently-used one first if
    /// the store is at capacity.
    pub fn create(&self, spec: VideoSpec, mode: TemporalMode, now: Instant) -> Arc<Session> {
        let mut inner = self.lock();
        if inner.map.len() >= self.capacity {
            // Same discipline as BoundedCache: drop the stalest entry.
            if let Some((&lru, _)) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used)
            {
                inner.map.remove(&lru);
                inner.evicted += 1;
            }
        }
        inner.next_id += 1;
        inner.tick += 1;
        let num = inner.next_id;
        let session = Arc::new(Session {
            id: format!("s-{num}"),
            spec,
            mode,
            state: Mutex::new(SessionState {
                next_frame: 0,
                prev: None,
                served_cycles: 0,
                baseline_cycles: 0,
            }),
        });
        let entry =
            Entry { session: Arc::clone(&session), last_used: inner.tick, deadline: now + self.idle };
        inner.map.insert(num, entry);
        inner.created += 1;
        session
    }

    /// Looks up a live session by wire id, refreshing its recency and
    /// idle deadline. Malformed, unknown, and expired ids all miss.
    pub fn get(&self, id: &str, now: Instant) -> Option<Arc<Session>> {
        let mut inner = self.lock();
        let Some(key) = parse_id(id) else {
            inner.misses += 1;
            return None;
        };
        match inner.map.get(&key).map(|e| Arc::clone(&e.session)) {
            Some(session) => {
                inner.hits += 1;
                inner.touch(key, now, self.idle);
                Some(session)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Removes a session by wire id (the `DELETE` exit).
    pub fn remove(&self, id: &str) -> Option<Arc<Session>> {
        let mut inner = self.lock();
        let removed = parse_id(id).and_then(|key| inner.map.remove(&key));
        match removed {
            Some(e) => {
                inner.hits += 1;
                inner.closed += 1;
                Some(e.session)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Removes every session whose idle deadline has passed; returns how
    /// many expired. Called from the server's parker sweep.
    pub fn sweep(&self, now: Instant) -> usize {
        let mut inner = self.lock();
        let stale: Vec<u64> = inner
            .map
            .iter()
            .filter(|(_, e)| e.deadline <= now)
            .map(|(&k, _)| k)
            .collect();
        for k in &stale {
            inner.map.remove(k);
        }
        inner.expired += stale.len() as u64;
        stale.len()
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> SessionStats {
        let inner = self.lock();
        SessionStats {
            open: inner.map.len(),
            capacity: self.capacity,
            created: inner.created,
            closed: inner.closed,
            expired: inner.expired,
            evicted: inner.evicted,
            hits: inner.hits,
            misses: inner.misses,
            frames: inner.frames,
        }
    }

    fn note_frame(&self) {
        self.lock().frames += 1;
    }
}

fn parse_id(id: &str) -> Option<u64> {
    id.strip_prefix("s-")?.parse().ok()
}

/// Handles `POST /session`: parses and validates the stream identity,
/// admits the session, and returns its id plus the effective
/// configuration (defaults resolved).
pub fn handle_create(store: &SessionStore, body: &str, now: Instant) -> (u16, String) {
    let parsed = match parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid JSON: {e}"))),
    };
    let req = match SessionRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&e)),
    };
    let session = store.create(req.spec(), req.mode, now);
    let body = JsonValue::object(vec![
        ("session", JsonValue::from(session.id.as_str())),
        ("model", JsonValue::from(req.model.name())),
        ("scene", JsonValue::from(scene_name(req.scene))),
        ("resolution", req.resolution.into()),
        ("frames", req.frames.into()),
        ("pan_px", req.pan_px.into()),
        ("noise", JsonValue::from(req.noise as f64)),
        ("seed", req.seed.into()),
        ("mode", JsonValue::from(temporal_mode_name(req.mode))),
    ])
    .to_json();
    (200, body)
}

/// Handles `POST /session/{id}/frame`: evaluates the session's next
/// frame against its retained previous frame and advances the state.
///
/// Frame 0 is the full spatial evaluation (nothing to difference
/// against); every later frame runs the temporal engine over the
/// cross-frame delta. The response carries the per-layer counters —
/// bit-identical to direct `temporal_network` evaluation — plus the
/// session's cumulative savings ledger. An empty body means "no
/// guards"; `resolution`/`frame` fields, when present, must match.
pub fn handle_frame(
    store: &SessionStore,
    cache: &SweepCache,
    id: &str,
    body: &str,
    now: Instant,
) -> (u16, String) {
    let Some(session) = store.get(id, now) else {
        return (404, error_body(&format!("unknown or expired session `{id}`")));
    };
    let effective = if body.trim().is_empty() { "{}" } else { body };
    let parsed = match parse(effective) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid JSON: {e}"))),
    };
    let req = match FrameRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&e)),
    };
    let spec = &session.spec;
    if let Some(res) = req.resolution {
        if res != spec.resolution as u64 {
            return (
                400,
                error_body(&format!(
                    "frame resolution {res} does not match session resolution {}",
                    spec.resolution
                )),
            );
        }
    }
    // Everything below holds the session's state lock: pipelined frames
    // on one connection (or several) serialize here, per session.
    let mut state = session.state.lock().expect("session state poisoned");
    let frame = state.next_frame;
    if frame >= spec.frames {
        return (
            400,
            error_body(&format!("frame {frame} past the session's {}-frame horizon", spec.frames)),
        );
    }
    if let Some(expected) = req.frame {
        if expected != frame as u64 {
            return (
                400,
                error_body(&format!("frame index {expected} does not match expected {frame}")),
            );
        }
    }
    let cur = cache.video_frame(spec, frame);
    let cycles = match &state.prev {
        None => cache.video_frame_baseline(spec, frame),
        Some(prev) => cache.video_frame_temporal(spec, frame, session.mode, prev),
    };
    let baseline = cache.video_frame_baseline(spec, frame);
    state.served_cycles += cycles.total_cycles();
    state.baseline_cycles += baseline.total_cycles();
    state.prev = Some(cur);
    state.next_frame = frame + 1;
    let (served_cum, baseline_cum, frames_served) =
        (state.served_cycles, state.baseline_cycles, state.next_frame);
    drop(state);
    store.note_frame();

    let savings_pct = if baseline_cum > 0 {
        100.0 * (1.0 - served_cum as f64 / baseline_cum as f64)
    } else {
        0.0
    };
    let body = JsonValue::object(vec![
        ("session", JsonValue::from(session.id.as_str())),
        ("frame", frame.into()),
        ("result", cycles_to_json(&cycles)),
        ("baseline_cycles", baseline.total_cycles().into()),
        (
            "cumulative",
            JsonValue::object(vec![
                ("frames", frames_served.into()),
                ("cycles", served_cum.into()),
                ("baseline_cycles", baseline_cum.into()),
                ("savings_pct", JsonValue::from(savings_pct)),
            ]),
        ),
    ])
    .to_json();
    (200, body)
}

/// Handles `DELETE /session/{id}`: closes the session and reports how
/// many frames it served. A second delete of the same id is a 404 —
/// the session left through the `closed` exit exactly once.
pub fn handle_close(store: &SessionStore, id: &str) -> (u16, String) {
    match store.remove(id) {
        Some(session) => {
            let body = JsonValue::object(vec![
                ("closed", JsonValue::from(session.id.as_str())),
                ("frames", session.frames_served().into()),
            ])
            .to_json();
            (200, body)
        }
        None => (404, error_body(&format!("unknown or expired session `{id}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffy_imaging::scenes::SceneKind;
    use diffy_models::CiModel;
    use diffy_sim::{temporal_network, AcceleratorConfig};

    fn test_spec() -> VideoSpec {
        VideoSpec::new(CiModel::Ircnn, SceneKind::City, 16, 3, 1, 0.0, 5)
    }

    fn store() -> SessionStore {
        SessionStore::new(4, Duration::from_millis(50))
    }

    #[test]
    fn lifecycle_counters_conserve() {
        let s = store();
        let now = Instant::now();
        let a = s.create(test_spec(), TemporalMode::SpatioTemporal, now);
        let b = s.create(test_spec(), TemporalMode::TemporalOnly, now);
        assert_ne!(a.id, b.id);
        assert!(s.get(&a.id, now).is_some());
        assert!(s.remove(&a.id).is_some());
        assert!(s.remove(&a.id).is_none(), "double close must miss");
        // b expires via sweep past its deadline.
        assert_eq!(s.sweep(now + Duration::from_millis(60)), 1);
        let st = s.stats();
        assert_eq!((st.created, st.closed, st.expired, st.open), (2, 1, 1, 0));
        assert!(st.conserved(), "{st:?}");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let s = SessionStore::new(2, Duration::from_secs(60));
        let now = Instant::now();
        let a = s.create(test_spec(), TemporalMode::SpatioTemporal, now);
        let b = s.create(test_spec(), TemporalMode::SpatioTemporal, now);
        // Touch a so b becomes the LRU.
        assert!(s.get(&a.id, now).is_some());
        let c = s.create(test_spec(), TemporalMode::SpatioTemporal, now);
        assert!(s.get(&b.id, now).is_none(), "LRU must be evicted");
        assert!(s.get(&a.id, now).is_some());
        assert!(s.get(&c.id, now).is_some());
        let st = s.stats();
        assert_eq!((st.created, st.evicted, st.open), (3, 1, 2));
        assert!(st.conserved(), "{st:?}");
    }

    #[test]
    fn malformed_unknown_and_expired_ids_miss() {
        let s = store();
        let now = Instant::now();
        for id in ["", "s-", "s-x", "sessions/1", "s-999", "-1"] {
            assert!(s.get(id, now).is_none(), "{id:?}");
        }
        let a = s.create(test_spec(), TemporalMode::SpatioTemporal, now);
        s.sweep(now + Duration::from_millis(60));
        assert!(s.get(&a.id, now).is_none(), "expired id must miss");
        assert!(s.stats().conserved());
    }

    #[test]
    fn frames_match_direct_temporal_network_evaluation() {
        // The handler's per-frame counters must be bit-identical to
        // driving temporal_network by hand over the same stream.
        let s = store();
        let cache = SweepCache::new();
        let now = Instant::now();
        let spec = test_spec();
        let (_, created) = handle_create(
            &s,
            r#"{"model": "IRCNN", "scene": "City", "resolution": 16, "frames": 3,
                "pan_px": 1, "noise": 0, "seed": 5, "mode": "spatiotemporal"}"#,
            now,
        );
        let id = parse(&created).unwrap().get("session").unwrap().as_str().unwrap().to_string();

        let cfg = AcceleratorConfig::table4();
        let fresh: Vec<_> =
            (0..3).map(|f| diffy_core::runner::video_frame_bundle(&spec, f)).collect();
        for f in 0..3 {
            let (status, body) = handle_frame(&s, &cache, &id, "", now);
            assert_eq!(status, 200, "{body}");
            let v = parse(&body).unwrap();
            assert_eq!(v.get("frame").unwrap().as_u64(), Some(f as u64));
            let expect = if f == 0 {
                diffy_sim::term_serial_network(
                    &fresh[0].trace,
                    &cfg,
                    diffy_sim::ValueMode::Differential,
                )
            } else {
                temporal_network(
                    &fresh[f - 1].trace,
                    &fresh[f].trace,
                    &cfg,
                    TemporalMode::SpatioTemporal,
                )
            };
            assert_eq!(
                v.get("result").unwrap().to_json(),
                cycles_to_json(&expect).to_json(),
                "frame {f} must serialize bit-identically to direct evaluation"
            );
        }
        // The horizon is closed: one more frame is a reasoned 400.
        let (status, body) = handle_frame(&s, &cache, &id, "", now);
        assert_eq!(status, 400);
        assert!(body.contains("past the session's"), "{body}");
        // Cumulative ledger: served <= baseline, savings reported.
        let (_, closed) = handle_close(&s, &id);
        assert!(closed.contains(r#""frames":3"#), "{closed}");
        assert!(s.stats().conserved());
    }

    #[test]
    fn handler_rejections_are_reasoned_4xx() {
        let s = store();
        let cache = SweepCache::new();
        let now = Instant::now();
        // Create rejections.
        for (body, needle) in [
            ("{", "invalid JSON"),
            ("{}", "missing required field `model`"),
            (r#"{"model": "IRCNN", "frames": 0}"#, "out of range"),
        ] {
            let (status, b) = handle_create(&s, body, now);
            assert_eq!(status, 400, "{body}");
            assert!(b.contains(needle), "{body}: {b}");
        }
        // Frame before create / unknown id.
        let (status, b) = handle_frame(&s, &cache, "s-1", "", now);
        assert_eq!(status, 404);
        assert!(b.contains("unknown or expired"), "{b}");
        // Wrong-resolution and wrong-index guards.
        let (_, created) = handle_create(&s, r#"{"model": "IRCNN", "resolution": 16}"#, now);
        let id = parse(&created).unwrap().get("session").unwrap().as_str().unwrap().to_string();
        let (status, b) = handle_frame(&s, &cache, &id, r#"{"resolution": 32}"#, now);
        assert_eq!(status, 400);
        assert!(b.contains("does not match session resolution"), "{b}");
        let (status, b) = handle_frame(&s, &cache, &id, r#"{"frame": 5}"#, now);
        assert_eq!(status, 400);
        assert!(b.contains("does not match expected"), "{b}");
        // Double close.
        assert_eq!(handle_close(&s, &id).0, 200);
        let (status, b) = handle_close(&s, &id);
        assert_eq!(status, 404);
        assert!(b.contains("unknown or expired"), "{b}");
        assert!(s.stats().conserved());
    }
}
