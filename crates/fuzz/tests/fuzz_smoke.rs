//! The bounded smoke pass CI runs: every driver, corpus + generated
//! cases, budget controlled by `DIFFY_FUZZ_ITERS` / `DIFFY_FUZZ_SEED` /
//! `DIFFY_FUZZ_TIME_CAP_MS`. On a contract violation the failure
//! message carries a ready-to-paste regression test naming the exact
//! input, so a red CI run is directly actionable.

use diffy_fuzz::{all_drivers, run_driver, FuzzConfig};

#[test]
fn all_drivers_run_clean_within_the_budget() {
    let cfg = FuzzConfig::from_env(diffy_fuzz::DEFAULT_ITERS);
    for driver in all_drivers() {
        let report = run_driver(driver.as_ref(), &cfg);
        println!("{}", report.summary());
        if !report.failures.is_empty() {
            let rendered: Vec<String> =
                report.failures.iter().map(|f| f.regression_test()).collect();
            panic!(
                "{} contract violation(s) in driver {}:\n\n{}",
                report.failures.len(),
                report.target,
                rendered.join("\n\n")
            );
        }
        // The smoke pass must actually exercise the parsers: at minimum
        // every corpus entry ran, and at least one outcome was recorded.
        assert!(report.iters_run > 0 || report.truncated, "{} ran nothing", report.target);
        assert!(!report.outcomes.is_empty(), "{} recorded no outcomes", report.target);
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    // The determinism gate: two runs with the same config produce the
    // same outcome census, the same input fingerprint, and the same
    // failures. Time caps are excluded — wall clock is the one
    // non-deterministic input, so the gate pins iteration count instead.
    let cfg = FuzzConfig { seed: 0xD1FF, iters: 64, time_cap: None };
    for driver in all_drivers() {
        let a = run_driver(driver.as_ref(), &cfg);
        let b = run_driver(driver.as_ref(), &cfg);
        assert_eq!(a, b, "driver {} is not deterministic", driver.name());
    }
}

#[test]
fn different_seeds_explore_different_inputs() {
    for driver in all_drivers() {
        let a = run_driver(driver.as_ref(), &FuzzConfig { seed: 1, iters: 32, time_cap: None });
        let b = run_driver(driver.as_ref(), &FuzzConfig { seed: 2, iters: 32, time_cap: None });
        assert_ne!(
            a.input_fingerprint, b.input_fingerprint,
            "driver {} ignores the seed",
            driver.name()
        );
    }
}
