//! Conformance table for `diffy_core::json`: every seed-corpus entry is
//! pinned to accept/reject, with exact values where the distinction
//! matters (u64-exact integers, duplicate keys, `-0`).

use diffy_core::json::{parse, JsonValue};
use diffy_fuzz::corpus::json_corpus;

/// Pinned classification: parses (and optionally to this exact value),
/// or is rejected.
enum Expect {
    Ok(Option<JsonValue>),
    Reject,
}

fn expectations() -> Vec<(&'static str, Expect)> {
    use Expect::*;
    vec![
        ("empty_object", Ok(Some(JsonValue::Object(Vec::new())))),
        ("nested_doc", Ok(None)),
        ("u64_max", Ok(Some(JsonValue::Int(i128::from(u64::MAX))))),
        ("i128_bounds", Ok(Some(JsonValue::Array(vec![
            JsonValue::Int(i128::MAX),
            JsonValue::Int(i128::MIN),
        ])))),
        ("pr6_exponent_to_infinity", Reject),
        ("pr6_integral_to_infinity", Reject),
        ("pr6_signed_hex_escape", Reject),
        ("lone_high_surrogate", Reject),
        ("surrogate_pair", Ok(Some(JsonValue::Str("😀".to_string())))),
        ("duplicate_keys", Ok(Some(JsonValue::Object(vec![
            ("a".to_string(), JsonValue::Int(1)),
            ("a".to_string(), JsonValue::Int(2)),
        ])))),
        ("deep_nesting_bomb", Reject),
        ("leading_zero", Reject),
        ("minus_zero", Ok(Some(JsonValue::Int(0)))),
        ("trailing_garbage", Reject),
        ("raw_control_in_string", Reject),
        ("unterminated_string", Reject),
    ]
}

#[test]
fn conformance_table_pins_every_corpus_entry() {
    let expectations = expectations();
    for case in json_corpus() {
        let want = expectations
            .iter()
            .find(|(name, _)| *name == case.name)
            .unwrap_or_else(|| panic!("corpus entry {} has no pinned expectation", case.name));
        let text = String::from_utf8(case.input.clone()).expect("json corpus is UTF-8");
        let got = parse(&text);
        match &want.1 {
            Expect::Ok(value) => {
                let v = got.unwrap_or_else(|e| panic!("{}: expected parse, got {e}", case.name));
                if let Some(expected) = value {
                    assert_eq!(&v, expected, "{}", case.name);
                }
                // Every accepted corpus entry must satisfy the
                // differential property too.
                assert_eq!(parse(&v.to_json()).unwrap(), v, "{}", case.name);
            }
            Expect::Reject => {
                assert!(got.is_err(), "{}: expected rejection, parsed", case.name);
            }
        }
    }
}

#[test]
fn expectations_have_no_orphans() {
    let names: Vec<&str> = json_corpus().iter().map(|c| c.name).collect();
    for (name, _) in expectations() {
        assert!(names.contains(&name), "expectation {name} has no corpus entry");
    }
}
