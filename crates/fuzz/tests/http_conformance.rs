//! RFC 9112 conformance table for `diffy_serve::http::read_request`.
//!
//! Every seed-corpus entry (including each historical PR 4/5/6 framing
//! fix) must land on its pinned classification, and an exhaustiveness
//! gate fails the suite if a corpus entry ever lacks an expectation —
//! adding a fix to the corpus without pinning it here is an error.

use std::io::{BufReader, Cursor};

use diffy_fuzz::corpus::http_corpus;
use diffy_serve::http::{read_request, ReadError, Request};

/// Pinned classification for one conformance case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Parses; (method, path, keep_alive after the parse).
    Ok(&'static str, &'static str, bool),
    /// Clean rejection with this status.
    Reject(u16),
    /// Clean EOF before any byte: the idle end of a connection.
    Idle,
    /// Connection died mid-request.
    Severed,
}

/// name → expectation for every corpus entry. Names must match
/// `corpus::http_corpus` exactly; the exhaustiveness test enforces it.
fn expectations() -> Vec<(&'static str, Expect)> {
    use Expect::*;
    vec![
        ("get_simple", Ok("GET", "/metrics", true)),
        ("post_with_body", Ok("POST", "/evaluate", true)),
        ("http10_one_shot", Ok("GET", "/", false)),
        ("leading_blank_lines", Ok("GET", "/", true)),
        ("bare_lf_terminators", Ok("GET", "/", true)),
        ("ows_around_header_value", Ok("GET", "/", true)),
        ("pr4_conflicting_content_lengths", Reject(400)),
        ("pr4_repeated_identical_content_lengths", Ok("POST", "/", true)),
        ("pr4_signed_content_length", Reject(400)),
        ("pr4_nondigit_content_length", Reject(400)),
        ("pr5_space_in_header_name", Reject(400)),
        ("pr5_space_before_colon", Reject(400)),
        ("pr5_obs_fold_continuation", Reject(400)),
        ("pr5_transfer_encoding_chunked", Reject(400)),
        ("pr5_te_cl_smuggle", Reject(400)),
        ("pr5_overlong_header_line", Reject(413)),
        ("pr5_overlong_request_line", Reject(413)),
        ("pr6_bare_cr_in_header_value", Reject(400)),
        ("pr6_trailing_cr_run", Reject(400)),
        ("pr6_nul_in_header_value", Reject(400)),
        ("pr6_connection_lines_combine", Ok("GET", "/", false)),
        ("pr6_content_length_overflow", Reject(413)),
        ("pr6_unicode_whitespace_content_length", Reject(400)),
        ("double_space_request_line", Reject(400)),
        ("missing_version", Reject(400)),
        ("http2_version", Reject(400)),
        ("non_origin_path", Reject(400)),
        ("empty_input", Idle),
        ("truncated_head", Severed),
        ("truncated_body", Severed),
        ("body_at_limit", Ok("POST", "/", true)),
        ("body_over_limit", Reject(413)),
        ("pipelined_pair", Ok("POST", "/", true)),
    ]
}

fn classify(input: &[u8]) -> (Expect, Option<Request>) {
    match read_request(&mut BufReader::new(Cursor::new(input.to_vec()))) {
        Ok(Ok(req)) => (Expect::Ok("", "", req.keep_alive()), Some(req)),
        Ok(Err(bad)) => (Expect::Reject(bad.status), None),
        Err(ReadError::Idle) => (Expect::Idle, None),
        Err(ReadError::Io(_)) => (Expect::Severed, None),
    }
}

#[test]
fn conformance_table_pins_every_corpus_entry() {
    let expectations = expectations();
    for case in http_corpus() {
        let want = expectations
            .iter()
            .find(|(name, _)| *name == case.name)
            .unwrap_or_else(|| panic!("corpus entry {} has no pinned expectation", case.name))
            .1;
        let (got, req) = classify(&case.input);
        match want {
            Expect::Ok(method, path, keep_alive) => {
                let req = req.unwrap_or_else(|| panic!("{}: expected parse, got {got:?}", case.name));
                assert_eq!(req.method, method, "{}", case.name);
                assert_eq!(req.path, path, "{}", case.name);
                assert_eq!(req.keep_alive(), keep_alive, "{}", case.name);
            }
            other => assert_eq!(got, other, "{}", case.name),
        }
    }
}

#[test]
fn expectations_have_no_orphans() {
    // The reverse gate: an expectation whose corpus entry was renamed or
    // deleted is as suspicious as an unpinned entry.
    let names: Vec<&str> = http_corpus().iter().map(|c| c.name).collect();
    for (name, _) in expectations() {
        assert!(names.contains(&name), "expectation {name} has no corpus entry");
    }
}

#[test]
fn rfc9112_request_line_forms() {
    // Beyond the corpus: the request-line grammar row by row.
    let cases: Vec<(&str, Expect)> = vec![
        ("GET / HTTP/1.1\r\n\r\n", Expect::Ok("GET", "/", true)),
        ("get / HTTP/1.1\r\n\r\n", Expect::Ok("get", "/", true)), // methods are case-sensitive tokens
        ("GET /a/b?q=1 HTTP/1.1\r\n\r\n", Expect::Ok("GET", "/a/b?q=1", true)),
        ("GET / HTTP/1.1 \r\n\r\n", Expect::Reject(400)), // trailing SP = 4th part
        (" GET / HTTP/1.1\r\n\r\n", Expect::Reject(400)),
        ("GET\t/ HTTP/1.1\r\n\r\n", Expect::Reject(400)), // tab is not the SP separator
        ("GET * HTTP/1.1\r\n\r\n", Expect::Reject(400)),  // asterisk-form unsupported
        ("GET http://h/ HTTP/1.1\r\n\r\n", Expect::Reject(400)), // absolute-form unsupported
        ("HTTP/1.1 200 OK\r\n\r\n", Expect::Reject(400)), // a response is not a request
        ("GET / HTTP/1.2\r\n\r\n", Expect::Reject(400)),
        ("GET / http/1.1\r\n\r\n", Expect::Reject(400)), // version is case-sensitive
    ];
    for (raw, want) in cases {
        let (got, req) = classify(raw.as_bytes());
        match want {
            Expect::Ok(method, path, _) => {
                let req = req.unwrap_or_else(|| panic!("{raw:?}: expected parse, got {got:?}"));
                assert_eq!((req.method.as_str(), req.path.as_str()), (method, path), "{raw:?}");
            }
            other => assert_eq!(got, other, "{raw:?}"),
        }
    }
}

#[test]
fn rfc9110_connection_token_semantics() {
    let cases = [
        ("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
        ("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", false),
        ("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n", false),
        ("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n", true),
        ("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", true),
        ("GET / HTTP/1.0\r\nConnection: foo, keep-alive\r\n\r\n", true),
        ("GET / HTTP/1.0\r\n\r\n", false),
        // Repeated field lines combine (the PR 6 fix).
        ("GET / HTTP/1.1\r\nConnection: keep-alive\r\nConnection: close\r\n\r\n", false),
        ("GET / HTTP/1.0\r\nConnection: a\r\nConnection: keep-alive\r\n\r\n", true),
    ];
    for (raw, want) in cases {
        let (_, req) = classify(raw.as_bytes());
        let req = req.unwrap_or_else(|| panic!("{raw:?} must parse"));
        assert_eq!(req.keep_alive(), want, "{raw:?}");
    }
}

#[test]
fn rfc9112_content_length_rules() {
    use diffy_serve::http::MAX_BODY_BYTES;
    let reject: Vec<(String, u16)> = vec![
        ("POST / HTTP/1.1\r\nContent-Length: +2\r\n\r\nok".into(), 400),
        ("POST / HTTP/1.1\r\nContent-Length: -2\r\n\r\nok".into(), 400),
        ("POST / HTTP/1.1\r\nContent-Length: 2 2\r\n\r\nok".into(), 400),
        ("POST / HTTP/1.1\r\nContent-Length: 2.0\r\n\r\nok".into(), 400),
        ("POST / HTTP/1.1\r\nContent-Length:\r\n\r\n".into(), 400),
        ("POST / HTTP/1.1\r\nContent-Length: 2,2\r\n\r\nok".into(), 400),
        (format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1), 413),
        ("POST / HTTP/1.1\r\nContent-Length: 340282366920938463463374607431768211456\r\n\r\n"
            .into(), 413),
    ];
    for (raw, status) in reject {
        let (got, _) = classify(raw.as_bytes());
        assert_eq!(got, Expect::Reject(status), "{raw:?}");
    }
    // Zero-length body parses to an empty body, leaving the stream
    // aligned for the next request.
    let raw = b"POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\nGET /n HTTP/1.1\r\n\r\n";
    let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
    let first = read_request(&mut reader).unwrap().unwrap();
    assert!(first.body.is_empty());
    let second = read_request(&mut reader).unwrap().unwrap();
    assert_eq!(second.path, "/n");
}
