//! Artifact-store fuzzing: byte-mutate valid on-disk artifacts —
//! truncation, header corruption, version skew, fingerprint flips,
//! interior JSON mangling — and assert the disk tier's read contract on
//! [`diffy_core::artifact::decode_artifact`]: every input is either
//! accepted (and then provably *right* — canonical re-encode decodes to
//! an equal artifact, and a wrong expected key is still rejected) or
//! rejected with a classified, reasoned error. Nothing panics, and
//! nothing is accepted-but-wrong — the failure mode that would let a
//! flipped bit on disk masquerade as a cached evaluation.
//!
//! The base input is a real artifact document produced by one evaluation
//! of the protocol-default spec (IRCCN/Kodak24 at a small resolution),
//! built once per process — the same amortization trick the session lane
//! uses. Mutations are applied to its bytes, so the generator explores
//! the actual wire format, not a toy grammar.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::RngExt;

use diffy_core::artifact::{artifact_document, decode_artifact};
use diffy_core::json::parse;
use diffy_core::runner::SweepCache;
use diffy_core::EvalArtifact;
use diffy_serve::protocol::EvalRequest;

use crate::corpus;

/// One real artifact document, computed once per process: the evaluation
/// is pure, so sharing changes cost, never outcomes.
pub fn base_document() -> &'static str {
    static DOC: OnceLock<String> = OnceLock::new();
    DOC.get_or_init(|| {
        let spec = parse(r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 16}"#)
            .expect("literal spec parses");
        let req = EvalRequest::from_json(&spec).expect("literal spec is valid");
        let (opts, eval) = (req.workload(), req.eval_options());
        let cache = SweepCache::new();
        let result = cache.evaluate(req.model, req.dataset, req.sample, &opts, &eval);
        let source_pixels = cache.bundle(req.model, req.dataset, req.sample, &opts).source_pixels;
        let key = diffy_core::result_key(req.model, req.dataset, req.sample, &opts, &eval);
        artifact_document(&key, &EvalArtifact { result, source_pixels })
    })
}

/// Deterministic checker repro tests call: feeds `input` to the artifact
/// decoder and asserts the read contract. Returns the outcome label:
/// `accepted` or `reject:<ArtifactError::kind()>` (with `reject:utf8`
/// standing in for the io path a non-UTF-8 file takes).
pub fn check_input(input: &[u8]) -> String {
    // The disk tier reads artifacts as text; a non-UTF-8 file surfaces as
    // an io-class rejection before the decoder ever runs.
    let Ok(text) = std::str::from_utf8(input) else {
        return "reject:utf8".to_string();
    };
    match decode_artifact(text, None) {
        Err(e) => {
            let reason = e.to_string();
            assert!(!reason.is_empty(), "rejection without a reason for kind {}", e.kind());
            format!("reject:{}", e.kind())
        }
        Ok((key, artifact)) => {
            // Accepted means right: the canonical re-encode must decode
            // to an equal artifact under the strictest mode (key echo +
            // fingerprint), and a wrong expected key must still reject.
            let canonical = artifact_document(&key, &artifact);
            let (key2, artifact2) = decode_artifact(&canonical, Some(&key))
                .unwrap_or_else(|e| panic!("canonical re-encode rejected: {e}"));
            assert_eq!(key, key2, "key changed across re-encode");
            assert!(artifact == artifact2, "artifact changed across re-encode");
            let wrong = decode_artifact(&canonical, Some("not-the-key"));
            match wrong {
                Err(e) if e.kind() == "key-mismatch" => {}
                other => panic!("wrong expected key not rejected: {other:?}"),
            }
            "accepted".to_string()
        }
    }
}

/// The artifact-store driver.
pub struct ArtifactDriver;

impl crate::Driver for ArtifactDriver {
    fn name(&self) -> &'static str {
        "artifact"
    }

    fn corpus(&self) -> Vec<(String, Vec<u8>)> {
        corpus::artifact_corpus().into_iter().map(|c| (c.name.to_string(), c.input)).collect()
    }

    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let base = base_document().as_bytes();
        let mut doc = base.to_vec();
        match rng.random_range(0..10u32) {
            // Pass-through: the decoder must keep accepting the real thing.
            0 => {}
            // Truncation at an arbitrary byte (torn write / short read).
            1 | 2 => doc.truncate(rng.random_range(0..doc.len())),
            // Header corruption: mangle the format marker.
            3 => {
                if let Some(pos) = find(&doc, b"diffy-artifact") {
                    doc[pos + rng.random_range(0..14usize)] = b'#';
                }
            }
            // Version skew: splice a different version number in.
            4 => {
                if let Some(pos) = find(&doc, b"\"version\":") {
                    doc[pos + 10] = b'0' + rng.random_range(2..10u8);
                }
            }
            // Fingerprint flip: perturb the last digit (value changes but
            // stays in u64 range — only the fingerprint check can trip).
            5 => {
                if let Some(pos) = find(&doc, b"\"fingerprint\":") {
                    let start = pos + 14;
                    let digits =
                        doc[start..].iter().take_while(|b| b.is_ascii_digit()).count();
                    let d = &mut doc[start + digits - 1];
                    *d = if *d == b'9' { b'1' } else { *d + 1 };
                }
            }
            // Interior mangling: flip, insert, or delete one byte
            // anywhere (decoder sees bad JSON, a broken field, or a
            // fingerprint mismatch — all must classify, none may panic).
            6 | 7 => {
                let pos = rng.random_range(0..doc.len());
                doc[pos] = rng.random_range(0..=255u8);
            }
            8 => {
                let pos = rng.random_range(0..doc.len());
                doc.insert(pos, rng.random_range(0..=255u8));
            }
            _ => {
                let pos = rng.random_range(0..doc.len());
                doc.remove(pos);
            }
        }
        doc
    }

    fn check(&self, input: &[u8], _delivery: &mut StdRng) -> String {
        check_input(input)
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;
    use crate::Driver;

    #[test]
    fn base_document_is_accepted() {
        assert_eq!(check_input(base_document().as_bytes()), "accepted");
    }

    #[test]
    fn generator_inputs_classify_without_panicking() {
        let mut saw_accept = false;
        let mut saw_reject = false;
        for i in 0..128 {
            let input = ArtifactDriver.generate(&mut case_rng(17, i, 0));
            let label = check_input(&input);
            saw_accept |= label == "accepted";
            saw_reject |= label.starts_with("reject:");
            assert!(
                label == "accepted" || label.starts_with("reject:"),
                "unexpected label {label}"
            );
        }
        assert!(saw_accept && saw_reject, "generator never reached both outcome classes");
    }

    /// The conformance table for the seed corpus: every failure class the
    /// issue names, pinned by entry name so a regression fails by name.
    #[test]
    fn corpus_entries_classify_as_named() {
        let expected = [
            ("valid_artifact", "accepted"),
            ("truncated_halfway", "reject:json"),
            ("bad_format_marker", "reject:bad-header"),
            ("missing_format_marker", "reject:bad-header"),
            ("version_skew_future", "reject:version-skew"),
            ("fingerprint_flip", "reject:fingerprint-mismatch"),
            ("interior_json_mangled", "reject:fingerprint-mismatch"),
            ("payload_shape_with_honest_fingerprint", "reject:payload"),
            ("not_json", "reject:json"),
            ("empty_file", "reject:json"),
            ("non_utf8", "reject:utf8"),
        ];
        let corpus = corpus::artifact_corpus();
        assert_eq!(corpus.len(), expected.len(), "corpus/table drift");
        for (name, want) in expected {
            let case = corpus
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("corpus entry {name} missing"));
            assert_eq!(check_input(&case.input), want, "corpus entry {name}");
        }
    }
}
