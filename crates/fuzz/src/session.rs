//! Session-lifecycle fuzzing: drive the streaming-session handlers
//! (`diffy_serve::session`) through generated op scripts — create /
//! frame / close / clock-advance / expiry-sweep in adversarial orders
//! with malformed bodies and bogus ids — and assert the subsystem
//! contract: every op answers a classified status (200 / reasoned 400 /
//! reasoned 404), nothing panics, and the accounting conservation law
//! `created == closed + expired + evicted + open` holds after *every*
//! op, not just at quiescence.
//!
//! The input format is a line-oriented script, so failing cases inline
//! into regression tests like every other lane:
//!
//! ```text
//! create {"model": "IRCNN", "resolution": 16, "frames": 2, "seed": 1}
//! frame s-1 {"frame": 0}
//! advance 100
//! sweep
//! frame s-1 {}
//! close s-1
//! ```
//!
//! Time is virtual — `advance` moves a millisecond offset and `sweep`
//! expires due sessions at the current virtual instant — so expiry paths
//! run deterministically with no sleeping. Session ids are assigned
//! `s-1, s-2, …` in creation order, so scripts can reference them
//! textually. Frame evaluations draw from one process-wide cache over a
//! tiny fixed spec pool, so 20 000 scripts cost a handful of real
//! evaluations.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::RngExt;

use diffy_core::json::parse;
use diffy_core::runner::SweepCache;
use diffy_serve::session::{handle_close, handle_create, handle_frame, SessionStore};

use crate::corpus;

/// Store shape under fuzz: small enough that generated scripts reach the
/// eviction path (capacity) and the expiry path (idle window, virtual ms).
const CAPACITY: usize = 2;
const IDLE_MS: u64 = 50;

/// One shared evaluation cache across every fuzz case: results are pure
/// functions of the spec, so sharing changes cost, never outcomes.
fn shared_cache() -> &'static SweepCache {
    static CACHE: OnceLock<SweepCache> = OnceLock::new();
    CACHE.get_or_init(SweepCache::new)
}

/// Deterministic checker repro tests call: runs `input` as an op script
/// against a fresh store, asserting the subsystem contract after every
/// op. Returns the outcome label (which status classes the script hit).
pub fn check_input(input: &[u8]) -> String {
    let script = String::from_utf8_lossy(input);
    let store = SessionStore::new(CAPACITY, Duration::from_millis(IDLE_MS));
    let cache = shared_cache();
    let base = Instant::now();
    let mut offset_ms = 0u64;
    let (mut served, mut rejected, mut missed) = (false, false, false);

    for line in script.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let now = base + Duration::from_millis(offset_ms);
        let (op, rest) = line.split_once(' ').unwrap_or((line, ""));
        let outcome = match op {
            "create" => Some(handle_create(&store, rest, now)),
            "frame" => {
                let (id, body) = rest.split_once(' ').unwrap_or((rest, ""));
                Some(handle_frame(&store, cache, id, body, now))
            }
            "close" => Some(handle_close(&store, rest)),
            "advance" => {
                offset_ms = offset_ms.saturating_add(rest.parse().unwrap_or(1));
                None
            }
            "sweep" => {
                store.sweep(now);
                None
            }
            // Unknown verbs exercise nothing; the generator never emits
            // them, but a mutated corpus entry may.
            _ => None,
        };
        if let Some((status, body)) = outcome {
            match status {
                200 => served = true,
                400 => rejected = true,
                404 => missed = true,
                other => panic!("unclassified status {other} for op {line:?}: {body}"),
            }
            let parsed = parse(&body)
                .unwrap_or_else(|e| panic!("non-JSON body for op {line:?}: {e}: {body}"));
            if status != 200 {
                let reason = parsed.get("error").and_then(|v| v.as_str()).unwrap_or("");
                assert!(!reason.is_empty(), "{status} without a reason for op {line:?}: {body}");
            } else if op == "frame" {
                let savings = parsed
                    .get("cumulative")
                    .and_then(|c| c.get("savings_pct"))
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("frame 200 without a ledger: {body}"));
                assert!(savings <= 100.0, "impossible savings {savings} for op {line:?}");
            }
        }
        let stats = store.stats();
        assert!(stats.conserved(), "conservation broken after op {line:?}: {stats:?}");
        assert!(stats.open <= CAPACITY, "capacity breached after op {line:?}: {stats:?}");
    }

    let classes: Vec<&str> = [(served, "served"), (rejected, "reject"), (missed, "miss")]
        .iter()
        .filter(|(hit, _)| *hit)
        .map(|(_, name)| *name)
        .collect();
    if classes.is_empty() {
        "noop".to_string()
    } else {
        classes.join("+")
    }
}

/// The session-lifecycle driver.
pub struct SessionDriver;

impl crate::Driver for SessionDriver {
    fn name(&self) -> &'static str {
        "session"
    }

    fn corpus(&self) -> Vec<(String, Vec<u8>)> {
        corpus::session_corpus().into_iter().map(|c| (c.name.to_string(), c.input)).collect()
    }

    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let mut script = String::new();
        let ops = rng.random_range(1..9usize);
        for _ in 0..ops {
            let line = match rng.random_range(0..10u32) {
                0..=2 => format!("create {}", pick(rng, CREATE_BODIES)),
                3..=6 => {
                    format!("frame {} {}", pick(rng, IDS), pick(rng, FRAME_BODIES))
                }
                7 => format!("close {}", pick(rng, IDS)),
                8 => format!("advance {}", [1u64, 10, 49, 51, 200][rng.random_range(0..5usize)]),
                _ => "sweep".to_string(),
            };
            script.push_str(&line);
            script.push('\n');
        }
        script.into_bytes()
    }

    fn check(&self, input: &[u8], _delivery: &mut StdRng) -> String {
        check_input(input)
    }
}

fn pick<'a>(rng: &mut StdRng, pool: &'a [&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

/// Create bodies: two valid specs from a fixed pool (so evaluation cost
/// amortizes across the whole run) plus every rejection class.
const CREATE_BODIES: &[&str] = &[
    r#"{"model": "IRCNN", "resolution": 16, "frames": 2, "seed": 1}"#,
    r#"{"model": "IRCNN", "resolution": 16, "frames": 3, "seed": 2, "mode": "temporal"}"#,
    "{",
    "{}",
    r#"{"model": "nope"}"#,
    r#"{"model": "IRCNN", "frames": 0}"#,
    r#"{"model": "IRCNN", "frames": 65}"#,
    r#"{"model": "IRCNN", "resolution": 1024}"#,
    r#"{"model": "IRCNN", "noise": 2}"#,
    r#"{"model": "IRCNN", "mode": "psychic"}"#,
    r#"{"model": "IRCNN", "scene": "Mars"}"#,
    r#"{"model": "IRCNN", "pan_px": 999}"#,
];

/// Frame bodies: no-guard, matching and mismatching guards, bad JSON.
const FRAME_BODIES: &[&str] = &[
    "",
    "{}",
    r#"{"frame": 0}"#,
    r#"{"frame": 1}"#,
    r#"{"frame": 7}"#,
    r#"{"resolution": 16}"#,
    r#"{"resolution": 32}"#,
    "{",
    r#"{"frame": -1}"#,
];

/// Id tokens: live-looking, never-created, malformed, and empty.
const IDS: &[&str] = &["s-1", "s-2", "s-3", "s-99", "s-x", "", "evaluate"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;
    use crate::Driver;

    #[test]
    fn generator_scripts_classify_without_panicking() {
        for i in 0..64 {
            let input = SessionDriver.generate(&mut case_rng(41, i, 0));
            let label = check_input(&input);
            assert!(
                ["noop", "served", "reject", "miss"]
                    .iter()
                    .any(|c| label == *c || label.contains('+')),
                "unexpected label {label}"
            );
        }
    }

    #[test]
    fn happy_lifecycle_classifies_served_only() {
        let script = b"create {\"model\": \"IRCNN\", \"resolution\": 16, \"frames\": 2, \"seed\": 1}\n\
                       frame s-1 {\"frame\": 0}\n\
                       frame s-1 {\"frame\": 1}\n\
                       close s-1\n";
        assert_eq!(check_input(script), "served");
    }

    #[test]
    fn expiry_script_reaches_the_miss_class() {
        let script = b"create {\"model\": \"IRCNN\", \"resolution\": 16, \"frames\": 2, \"seed\": 1}\n\
                       advance 51\n\
                       sweep\n\
                       frame s-1 {}\n";
        assert_eq!(check_input(script), "served+miss");
    }
}
