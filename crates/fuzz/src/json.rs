//! JSON fuzzing: a structured [`JsonValue`] generator for the
//! differential round-trip property `parse(emit(v)) == v`, plus a byte
//! mutator that feeds near-miss documents to `diffy_core::json::parse`
//! asserting it never panics, keeps error offsets in bounds, and stays
//! emit-idempotent on everything it accepts.

use rand::rngs::StdRng;
use rand::RngExt;

use diffy_core::json::{parse, JsonValue};

use crate::corpus;

/// Generates one structurally random [`JsonValue`] — the generator half
/// of the differential property. Floats are always finite (non-finite
/// values have no JSON form), integers cover the full `i128` range so
/// `u64` cycle counts round-trip exactly, strings mix ASCII, escapes,
/// astral-plane scalars and control characters.
pub fn gen_value(rng: &mut StdRng, depth: usize) -> JsonValue {
    let leaf_only = depth >= 6;
    match rng.random_range(0..if leaf_only { 5u32 } else { 7u32 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.random::<bool>()),
        2 => JsonValue::Int(gen_int(rng)),
        3 => JsonValue::Float(gen_finite_f64(rng)),
        4 => JsonValue::Str(gen_string(rng)),
        5 => {
            let n = rng.random_range(0..4usize);
            JsonValue::Array((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..4usize);
            JsonValue::Object(
                (0..n)
                    .map(|i| {
                        // Occasional duplicate keys: the document model
                        // preserves them, so the round trip must too.
                        let key = if i > 0 && rng.random_range(0..8u32) == 0 {
                            "dup".to_string()
                        } else {
                            gen_string(rng)
                        };
                        (key, gen_value(rng, depth + 1))
                    })
                    .collect(),
            )
        }
    }
}

fn gen_int(rng: &mut StdRng) -> i128 {
    match rng.random_range(0..6u32) {
        0 => i128::from(rng.random_range(-100i64..100)),
        1 => i128::from(rng.random::<u64>()), // full u64 range, incl. > 2^53
        2 => i128::from(rng.random::<i64>()),
        3 => i128::MAX - i128::from(rng.random_range(0..3u8)),
        4 => i128::MIN + i128::from(rng.random_range(0..3u8)),
        _ => {
            // Around the f64-exactness cliff at 2^53.
            let base = 1i128 << 53;
            base + i128::from(rng.random_range(-2i64..=2))
        }
    }
}

fn gen_finite_f64(rng: &mut StdRng) -> f64 {
    loop {
        // Uniform over bit patterns reaches subnormals, extreme
        // exponents and negative zero — the shapes shortest-roundtrip
        // formatting has to survive.
        let f = f64::from_bits(rng.random::<u64>());
        if f.is_finite() {
            return f;
        }
    }
}

fn gen_string(rng: &mut StdRng) -> String {
    const POOL: &[char] =
        &['a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', 'Ж',
            '\u{2028}', '\u{10348}', '\u{1F600}', '\u{fffd}'];
    let n = rng.random_range(0..10usize);
    (0..n).map(|_| POOL[rng.random_range(0..POOL.len())]).collect()
}

/// Deterministic checker repro tests call: parses `input` (lossily
/// decoded if mutation broke UTF-8), asserting the parser contract.
/// Returns the outcome label.
pub fn check_input(input: &[u8]) -> String {
    let text = String::from_utf8_lossy(input);
    match parse(&text) {
        Ok(v) => {
            // Emit-idempotence: anything the parser accepts must
            // serialize, re-parse to the same value, and re-serialize to
            // the same bytes. This is the check that caught `1e999`
            // parsing to an unserializable infinity.
            let emitted = v.to_json();
            let reparsed = parse(&emitted).unwrap_or_else(|e| {
                panic!("emitter output failed to re-parse: {e} (doc: {emitted})")
            });
            assert_eq!(reparsed, v, "parse(emit(v)) != v for emitted doc {emitted}");
            assert_eq!(reparsed.to_json(), emitted, "emit not idempotent for {emitted}");
            if emitted.as_bytes() == input {
                "roundtrip_exact".to_string()
            } else {
                "parsed_normalized".to_string()
            }
        }
        Err(e) => {
            assert!(
                e.offset <= text.len(),
                "error offset {} beyond input length {}",
                e.offset,
                text.len()
            );
            assert!(!e.message.is_empty(), "rejection with an empty reason");
            "rejected".to_string()
        }
    }
}

/// The JSON byte-fuzz driver.
pub struct JsonDriver;

impl crate::Driver for JsonDriver {
    fn name(&self) -> &'static str {
        "json"
    }

    fn corpus(&self) -> Vec<(String, Vec<u8>)> {
        corpus::json_corpus().into_iter().map(|c| (c.name.to_string(), c.input)).collect()
    }

    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let mut bytes = gen_value(rng, 0).to_json().into_bytes();
        // Half the cases stay pristine (exact round-trip), half get
        // byte-level damage (parser robustness).
        for _ in 0..rng.random_range(0..=2usize) {
            mutate(&mut bytes, rng);
        }
        bytes
    }

    fn check(&self, input: &[u8], _delivery: &mut StdRng) -> String {
        check_input(input)
    }
}

/// One byte-level mutation: truncation, byte flips, structural token
/// splices, digit/escape corruption, slice duplication.
pub fn mutate(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    if bytes.is_empty() {
        bytes.extend_from_slice(b"{}");
    }
    match rng.random_range(0..7u32) {
        0 => bytes.truncate(rng.random_range(0..bytes.len())),
        1 => {
            let i = rng.random_range(0..bytes.len());
            bytes[i] = rng.random::<u8>();
        }
        2 => {
            let i = rng.random_range(0..=bytes.len());
            let t = *pick(rng, b"{}[]\",:\\");
            bytes.insert(i, t);
        }
        3 => {
            let i = rng.random_range(0..bytes.len());
            bytes.remove(i);
        }
        4 => {
            // Number damage: signs, exponents, leading zeros.
            let frag = *pick(
                rng,
                &[b"1e999".as_slice(), b"-0", b"01", b"1e", b"--1", b".5", b"1.", b"+1"],
            );
            let i = rng.random_range(0..=bytes.len());
            bytes.splice(i..i, frag.iter().copied());
        }
        5 => {
            // Escape damage inside strings.
            let frag = *pick(
                rng,
                &[br"\u+041".as_slice(), br"\ud800", br"\u00", br"\x41", br"\"],
            );
            let i = rng.random_range(0..=bytes.len());
            bytes.splice(i..i, frag.iter().copied());
        }
        _ => {
            // Duplicate a random slice (repeated members, nested bombs).
            let a = rng.random_range(0..bytes.len());
            let b = rng.random_range(a..=bytes.len().min(a + 32));
            let slice: Vec<u8> = bytes[a..b].to_vec();
            bytes.splice(a..a, slice);
        }
    }
}

pub(crate) fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    #[test]
    fn generated_values_round_trip_exactly() {
        for i in 0..256 {
            let v = gen_value(&mut case_rng(21, i, 0), 0);
            let doc = v.to_json();
            let back = parse(&doc).unwrap_or_else(|e| panic!("emit must parse: {e} ({doc})"));
            assert_eq!(back, v, "differential failure for {doc}");
        }
    }

    #[test]
    fn pristine_generator_output_classifies_as_exact_roundtrip() {
        for i in 0..64 {
            let doc = gen_value(&mut case_rng(22, i, 0), 0).to_json();
            assert_eq!(check_input(doc.as_bytes()), "roundtrip_exact", "{doc}");
        }
    }

    #[test]
    fn u64_and_i128_bounds_survive_the_property() {
        for v in [
            JsonValue::Int(i128::from(u64::MAX)),
            JsonValue::Int(i128::MAX),
            JsonValue::Int(i128::MIN),
            JsonValue::Int((1 << 53) + 1),
        ] {
            assert_eq!(parse(&v.to_json()).unwrap(), v);
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let make = |seed: u64| {
            let mut rng = case_rng(seed, 9, 0);
            let mut b = gen_value(&mut rng, 0).to_json().into_bytes();
            mutate(&mut b, &mut rng);
            b
        };
        assert_eq!(make(4), make(4));
    }
}
