//! Structured HTTP request fuzzing: generate a valid request, mutate it
//! at the byte/token level, trickle it through [`read_request_with`] in
//! adversarially small chunks, and assert the parser contract — no
//! panic, bounded reads, and a classified outcome (parsed / 400-class
//! reject / 413 / severed).

use std::io::{self, BufReader, Read};

use rand::rngs::StdRng;
use rand::RngExt;

use diffy_serve::http::{
    read_request_with, BadRequest, ReadError, Request, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};

use crate::corpus;

/// Hard ceiling on bytes the parser may pull off a connection for one
/// request, whatever the input: roughly head budget (the per-line cap can
/// overshoot the cumulative cap by one line) + body budget + one
/// `BufReader` read-ahead. The trickle shim counts every byte it serves
/// and [`check_input`] asserts the count stays under this — the "bounded
/// reads" half of the parser contract.
pub const READ_BOUND: usize = 2 * (MAX_HEAD_BYTES + 1) + MAX_BODY_BYTES + 16 * 1024;

/// A `Read` shim that serves its buffer in deterministic, RNG-chosen
/// chunks (1..=`max_chunk` bytes per call), counting what it hands out.
/// Small chunks reproduce real-socket partial reads: every head line and
/// body split across arbitrarily many `read` calls.
pub struct TrickleReader<'a> {
    data: &'a [u8],
    pos: usize,
    max_chunk: usize,
    chunk_rng: StdRng,
    /// Total bytes served so far.
    pub served: usize,
}

impl<'a> TrickleReader<'a> {
    /// A shim over `data` serving chunks of 1..=`max_chunk` bytes drawn
    /// from `chunk_rng`.
    pub fn new(data: &'a [u8], max_chunk: usize, chunk_rng: StdRng) -> Self {
        Self { data, pos: 0, max_chunk: max_chunk.max(1), chunk_rng, served: 0 }
    }
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        let want = self.chunk_rng.random_range(1..=self.max_chunk);
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        self.served += n;
        Ok(n)
    }
}

/// How [`check_input`] classified one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpOutcome {
    /// The parser accepted a request.
    Parsed,
    /// Clean rejection with an HTTP status (400-class or 413).
    Rejected(u16),
    /// Nothing arrived before the peer went away.
    Idle,
    /// The connection died mid-request (EOF, timeout, tick abort).
    Severed,
}

/// Feeds `input` through [`read_request_with`] byte-at-a-time (the most
/// adversarial fixed delivery) and asserts the parser contract. This is
/// the deterministic entry point repro tests call; the fuzzer's own
/// delivery additionally randomizes chunk sizes, buffer capacity and
/// tick aborts via [`check_input_with`].
pub fn check_input(input: &[u8]) -> HttpOutcome {
    // Fixed delivery lane so repros don't depend on a run seed.
    let delivery = crate::case_rng(0, 0, 1);
    check_input_with(input, 1, 64, None, delivery)
}

/// [`check_input`] with explicit delivery: trickle chunks of
/// 1..=`max_chunk`, a `BufReader` of `buf_capacity` bytes, and an
/// optional tick budget after which the tick hook aborts (simulating the
/// server severing at a deadline).
pub fn check_input_with(
    input: &[u8],
    max_chunk: usize,
    buf_capacity: usize,
    abort_after_ticks: Option<usize>,
    chunk_rng: StdRng,
) -> HttpOutcome {
    let mut trickle = TrickleReader::new(input, max_chunk, chunk_rng);
    let mut reader = BufReader::with_capacity(buf_capacity.max(1), &mut trickle);
    let mut ticks = 0usize;
    let mut tick = || {
        ticks += 1;
        match abort_after_ticks {
            Some(budget) if ticks > budget => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "deadline exceeded during read"))
            }
            _ => Ok(()),
        }
    };
    let result = read_request_with(&mut reader, &mut tick);
    drop(reader);
    assert!(
        trickle.served <= READ_BOUND,
        "unbounded read: served {} bytes (bound {READ_BOUND}) for a {}-byte input",
        trickle.served,
        input.len(),
    );
    match result {
        Ok(Ok(req)) => {
            assert_parsed_invariants(&req);
            HttpOutcome::Parsed
        }
        Ok(Err(bad)) => {
            assert_rejection_invariants(&bad);
            HttpOutcome::Rejected(bad.status)
        }
        Err(ReadError::Idle) => HttpOutcome::Idle,
        Err(ReadError::Io(_)) => HttpOutcome::Severed,
    }
}

/// Invariants every *accepted* request must satisfy — anything else means
/// the parser let unframed bytes through.
fn assert_parsed_invariants(req: &Request) {
    assert!(!req.method.is_empty(), "accepted request with empty method");
    assert!(req.path.starts_with('/'), "accepted non-origin-form path {:?}", req.path);
    assert!(
        req.body.len() <= MAX_BODY_BYTES,
        "accepted oversized body: {} bytes",
        req.body.len()
    );
    for (name, value) in &req.headers {
        assert!(
            !name.is_empty()
                && name.bytes().all(|b| {
                    (b.is_ascii_alphanumeric() && !b.is_ascii_uppercase())
                        || b"!#$%&'*+-.^_`|~".contains(&b)
                }),
            "accepted non-token header name {name:?}"
        );
        assert!(
            !value.bytes().any(|b| b < 0x20 && b != b'\t'),
            "accepted control byte in header value {value:?}"
        );
    }
    // The keep-alive decision must be computable without panicking.
    let _ = req.keep_alive();
}

/// Invariants every rejection must satisfy: a status the server can
/// actually answer with, and a reason a human can read.
fn assert_rejection_invariants(bad: &BadRequest) {
    assert!(
        bad.status == 400 || bad.status == 413,
        "rejection outside the 400-class contract: {}",
        bad.status
    );
    assert!(!bad.message.is_empty(), "rejection with an empty reason");
}

/// The structured HTTP driver: valid request generation + mutation
/// catalogue + trickled delivery.
pub struct HttpDriver;

impl crate::Driver for HttpDriver {
    fn name(&self) -> &'static str {
        "http"
    }

    fn corpus(&self) -> Vec<(String, Vec<u8>)> {
        corpus::http_corpus().into_iter().map(|c| (c.name.to_string(), c.input)).collect()
    }

    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let mut bytes = generate_valid_request(rng);
        // 0..=3 mutation rounds; 0 keeps a valid request in the mix so
        // the `parsed` outcome stays exercised.
        for _ in 0..rng.random_range(0..=3usize) {
            mutate(&mut bytes, rng);
        }
        bytes
    }

    fn check(&self, input: &[u8], delivery: &mut StdRng) -> String {
        let max_chunk = *pick(delivery, &[1, 2, 3, 7, 64, 1460, 8192]);
        let buf_capacity = *pick(delivery, &[1, 8, 64, 512, 8192]);
        // Mostly run to completion; sometimes sever mid-read via the
        // tick hook, like the server's deadline enforcement does.
        let abort_after_ticks = if delivery.random_range(0..8u32) == 0 {
            Some(delivery.random_range(0..32usize))
        } else {
            None
        };
        let chunk_rng = crate::case_rng(delivery.random::<u64>(), 0, 2);
        match check_input_with(input, max_chunk, buf_capacity, abort_after_ticks, chunk_rng) {
            HttpOutcome::Parsed => "parsed".to_string(),
            HttpOutcome::Rejected(status) => format!("reject_{status}"),
            HttpOutcome::Idle => "idle".to_string(),
            HttpOutcome::Severed => "severed".to_string(),
        }
    }
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

fn token(rng: &mut StdRng, len: std::ops::RangeInclusive<usize>) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
    let n = rng.random_range(len);
    (0..n.max(1)).map(|_| *pick(rng, CHARS) as char).collect()
}

/// Renders a syntactically valid request: method, origin-form path,
/// version, a handful of headers, and (for POSTs) a correctly framed
/// body.
pub fn generate_valid_request(rng: &mut StdRng) -> Vec<u8> {
    let method = *pick(rng, &["GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS"]);
    let mut path = String::from("/");
    for i in 0..rng.random_range(0..3usize) {
        if i > 0 {
            path.push('/');
        }
        path.push_str(&token(rng, 1..=8));
    }
    if rng.random::<bool>() {
        path.push_str(&format!("?{}={}", token(rng, 1..=4), token(rng, 1..=6)));
    }
    let version = *pick(rng, &["HTTP/1.1", "HTTP/1.1", "HTTP/1.1", "HTTP/1.0"]);
    let mut out = format!("{method} {path} {version}\r\n");
    out.push_str(&format!("Host: {}\r\n", token(rng, 1..=10)));
    for _ in 0..rng.random_range(0..4usize) {
        out.push_str(&format!("X-{}: {}\r\n", token(rng, 1..=8), token(rng, 0..=12)));
    }
    if rng.random_range(0..4u32) == 0 {
        let conn = *pick(rng, &["close", "keep-alive", "close, foo", "Keep-Alive", "upgrade"]);
        out.push_str(&format!("Connection: {conn}\r\n"));
    }
    let mut bytes = out.into_bytes();
    if method == "POST" || method == "PUT" || rng.random_range(0..8u32) == 0 {
        let len = rng.random_range(0..2048usize);
        let mut body = vec![0u8; len];
        for b in &mut body {
            *b = rng.random::<u8>();
        }
        bytes.extend_from_slice(format!("Content-Length: {len}\r\n\r\n").as_bytes());
        bytes.extend_from_slice(&body);
    } else {
        bytes.extend_from_slice(b"\r\n");
    }
    bytes
}

/// One mutation from the catalogue, applied in place. Every class the
/// framing sweeps of PRs 4–6 fixed by hand is represented: truncation,
/// header splicing, CRLF games, Content-Length corruption, oversize
/// lines, control bytes, smuggle shapes.
pub fn mutate(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    if bytes.is_empty() {
        bytes.extend_from_slice(b"GET / HTTP/1.1\r\n\r\n");
    }
    match rng.random_range(0..13u32) {
        // Truncate anywhere: partial heads, partial bodies.
        0 => bytes.truncate(rng.random_range(0..bytes.len())),
        // Flip one byte.
        1 => {
            let i = rng.random_range(0..bytes.len());
            bytes[i] = rng.random::<u8>();
        }
        // Insert a control byte (NUL, bare CR, bell, DEL) mid-stream.
        2 => {
            let i = rng.random_range(0..=bytes.len());
            let b = *pick(rng, &[0x00u8, 0x0d, 0x07, 0x7f, 0x0b]);
            bytes.insert(i, b);
        }
        // CRLF games: rewrite one line terminator.
        3 => {
            if let Some(at) = find_nth_crlf(bytes, rng) {
                let repl = *pick(rng, &[b"\n".as_slice(), b"\r", b"\r\r\n", b"\n\r", b""]);
                bytes.splice(at..at + 2, repl.iter().copied());
            }
        }
        // Splice in an extra Content-Length header with an adversarial
        // value: conflicting, signed, hex, overflow, NBSP-padded.
        4 => {
            let value = match rng.random_range(0..8u32) {
                0 => rng.random_range(0..4096u64).to_string(),
                1 => format!("+{}", rng.random_range(0..99u64)),
                2 => format!("-{}", rng.random_range(0..99u64)),
                3 => "18446744073709551616".to_string(),
                4 => format!("{}", u64::from(u32::MAX) + rng.random_range(0..99u64)),
                5 => format!("0x{:x}", rng.random_range(0..255u64)),
                6 => format!("\u{a0}{}", rng.random_range(0..99u64)),
                _ => format!("{} {}", rng.random_range(0..9u64), rng.random_range(0..9u64)),
            };
            insert_header_line(bytes, &format!("Content-Length: {value}"), rng);
        }
        // Splice a Transfer-Encoding header (the TE.CL smuggle shape).
        5 => {
            let te = *pick(rng, &["chunked", "identity", "chunked, gzip"]);
            insert_header_line(bytes, &format!("Transfer-Encoding: {te}"), rng);
        }
        // Header-name whitespace games.
        6 => {
            let line = *pick(
                rng,
                &["X-Pad : v", " X-Fold: v", "X\tTab: v", "X Y: v", ": empty-name", "nocolon"],
            );
            insert_header_line(bytes, line, rng);
        }
        // Oversize line: a header value near/over the head cap.
        7 => {
            let extra = rng.random_range(0..4096usize);
            let pad = "a".repeat(MAX_HEAD_BYTES - 2048 + extra);
            insert_header_line(bytes, &format!("X-Pad: {pad}"), rng);
        }
        // Duplicate one existing line (repeated headers, repeated
        // request lines).
        8 => {
            let lines = line_spans(bytes);
            if let Some(&(start, end)) = lines.get(rng.random_range(0..lines.len().max(1))) {
                let line: Vec<u8> = bytes[start..end].to_vec();
                bytes.splice(start..start, line);
            }
        }
        // Leading blank lines before the request line.
        9 => {
            let n = rng.random_range(1..8usize);
            for _ in 0..n {
                bytes.insert(0, b'\n');
                bytes.insert(0, b'\r');
            }
        }
        // Append junk / a pipelined second request after the body.
        10 => {
            let tail = *pick(
                rng,
                &[b"GET /next HTTP/1.1\r\n\r\n".as_slice(), b"\x00\x01\x02", b"garbage"],
            );
            bytes.extend_from_slice(tail);
        }
        // Corrupt digits of an existing Content-Length value.
        11 => {
            if let Some(pos) = find_subsequence(bytes, b"Content-Length: ") {
                let digit_at = pos + b"Content-Length: ".len();
                if digit_at < bytes.len() {
                    bytes[digit_at] = *pick(rng, b"90+-x ");
                }
            }
        }
        // Mangle the request line: drop a part, double a space, break
        // the version.
        _ => {
            if let Some(eol) = bytes.iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&bytes[..eol]).into_owned();
                let mangled = match rng.random_range(0..5u32) {
                    0 => line.replacen(' ', "  ", 1),
                    1 => line.replace("HTTP/1.1", "HTTP/9.9"),
                    2 => line.split(' ').skip(1).collect::<Vec<_>>().join(" "),
                    3 => line.replace(' ', "\t"),
                    _ => format!("{line} EXTRA"),
                };
                bytes.splice(..eol, mangled.into_bytes());
            }
        }
    }
}

fn insert_header_line(bytes: &mut Vec<u8>, line: &str, rng: &mut StdRng) {
    // Insert after an existing line boundary inside the head (before the
    // blank line when there is one).
    let lines = line_spans(bytes);
    let head_end = find_subsequence(bytes, b"\r\n\r\n").map(|p| p + 2).unwrap_or(bytes.len());
    let candidates: Vec<usize> =
        lines.iter().map(|&(_, end)| end).filter(|&e| e <= head_end).collect();
    let at = if candidates.is_empty() {
        bytes.len()
    } else {
        candidates[rng.random_range(0..candidates.len())]
    };
    let mut insert = line.as_bytes().to_vec();
    insert.extend_from_slice(b"\r\n");
    bytes.splice(at..at, insert);
}

/// Byte spans of `\n`-terminated lines (terminator included).
fn line_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            spans.push((start, i + 1));
            start = i + 1;
        }
    }
    spans
}

fn find_nth_crlf(bytes: &[u8], rng: &mut StdRng) -> Option<usize> {
    let positions: Vec<usize> =
        bytes.windows(2).enumerate().filter(|&(_, w)| w == b"\r\n").map(|(i, _)| i).collect();
    if positions.is_empty() {
        None
    } else {
        Some(positions[rng.random_range(0..positions.len())])
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    #[test]
    fn valid_generated_requests_parse() {
        for i in 0..64 {
            let input = generate_valid_request(&mut case_rng(1, i, 0));
            let outcome = check_input(&input);
            assert_eq!(
                outcome,
                HttpOutcome::Parsed,
                "seed 1 iter {i}: {:?}",
                String::from_utf8_lossy(&input)
            );
        }
    }

    #[test]
    fn trickle_reader_serves_every_byte_in_order() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut r = TrickleReader::new(&data, 7, case_rng(3, 0, 1));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.served, data.len());
    }

    #[test]
    fn delivery_chunking_never_changes_the_outcome() {
        // Framing must be a property of the bytes, not of how they
        // arrive: any chunking/buffering of the same input classifies
        // identically (severing aborts disabled).
        for i in 0..48 {
            let mut rng = case_rng(5, i, 0);
            let input = {
                let mut b = generate_valid_request(&mut rng);
                for _ in 0..(i % 3) {
                    mutate(&mut b, &mut rng);
                }
                b
            };
            let baseline = check_input_with(&input, 1, 1, None, case_rng(9, i, 2));
            for (chunk, cap) in [(3usize, 8usize), (1460, 512), (8192, 8192)] {
                let outcome = check_input_with(&input, chunk, cap, None, case_rng(11, i, 2));
                assert_eq!(
                    outcome,
                    baseline,
                    "iter {i} chunk={chunk} cap={cap}: {:?}",
                    String::from_utf8_lossy(&input)
                );
            }
        }
    }

    #[test]
    fn tick_abort_classifies_as_severed_not_panic() {
        let input = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let outcome = check_input_with(input, 1, 1, Some(0), case_rng(0, 0, 2));
        assert_eq!(outcome, HttpOutcome::Severed);
    }

    #[test]
    fn mutation_catalogue_is_deterministic() {
        let make = |seed: u64| {
            let mut rng = case_rng(seed, 42, 0);
            let mut b = generate_valid_request(&mut rng);
            for _ in 0..3 {
                mutate(&mut b, &mut rng);
            }
            b
        };
        assert_eq!(make(7), make(7));
        assert_ne!(make(7), make(8));
    }
}
