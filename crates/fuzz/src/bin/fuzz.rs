//! Standalone fuzz entrypoint:
//! `fuzz [http|json|protocol|session|artifact|all] [flags]`.
//!
//! Runs the requested drivers, prints an outcome census per driver, and
//! on any contract violation prints a ready-to-paste regression test,
//! optionally writes the failing input to `--failures-dir`, and exits
//! non-zero. Defaults come from the environment (`DIFFY_FUZZ_ITERS`,
//! `DIFFY_FUZZ_SEED`, `DIFFY_FUZZ_TIME_CAP_MS`), so CI and `make fuzz`
//! share one configuration surface.
//!
//! ```text
//! fuzz all --iters 20000 --seed 0xd1ff --time-cap-ms 60000 \
//!      --failures-dir fuzz_failures
//! ```

use std::process::ExitCode;
use std::time::Duration;

use diffy_fuzz::{all_drivers, run_driver, Driver, FuzzConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [http|json|protocol|session|artifact|all] [--iters N] [--seed S] \
         [--time-cap-ms T] [--failures-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_u64(value: &str, flag: &str) -> u64 {
    let parsed = if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("fuzz: bad value {value:?} for {flag}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = "all".to_string();
    let mut cfg = FuzzConfig::from_env(diffy_fuzz::DEFAULT_ITERS);
    let mut failures_dir: Option<String> = None;

    let mut it = args.iter();
    let mut positional_seen = false;
    while let Some(arg) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("fuzz: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--iters" => cfg.iters = parse_u64(&flag_value("--iters"), "--iters"),
            "--seed" => cfg.seed = parse_u64(&flag_value("--seed"), "--seed"),
            "--time-cap-ms" => {
                cfg.time_cap =
                    Some(Duration::from_millis(parse_u64(&flag_value("--time-cap-ms"), "--time-cap-ms")));
            }
            "--failures-dir" => failures_dir = Some(flag_value("--failures-dir")),
            "http" | "json" | "protocol" | "session" | "artifact" | "all" if !positional_seen => {
                target = arg.clone();
                positional_seen = true;
            }
            _ => usage(),
        }
    }

    let drivers: Vec<Box<dyn Driver>> = all_drivers()
        .into_iter()
        .filter(|d| target == "all" || d.name() == target)
        .collect();
    if drivers.is_empty() {
        usage();
    }

    let mut total_failures = 0usize;
    for driver in &drivers {
        let report = run_driver(driver.as_ref(), &cfg);
        println!("{}", report.summary());
        for (i, failure) in report.failures.iter().enumerate() {
            total_failures += 1;
            eprintln!("\n{}", failure.regression_test());
            if let Some(dir) = &failures_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("fuzz: cannot create {dir}: {e}");
                    continue;
                }
                let path = format!("{dir}/{}-{:#x}-{i}.bin", failure.target, failure.seed);
                match std::fs::write(&path, &failure.input) {
                    Ok(()) => eprintln!("fuzz: failing input written to {path}"),
                    Err(e) => eprintln!("fuzz: cannot write {path}: {e}"),
                }
            }
        }
    }
    if total_failures > 0 {
        eprintln!("\nfuzz: {total_failures} contract violation(s) — see regression tests above");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
