//! Deterministic fuzzing + conformance harness for the hand-rolled
//! parsers: `diffy_serve::http`, `diffy_serve::protocol`, and
//! `diffy_core::json`.
//!
//! PRs 4 and 5 each shipped a "framing bugfix sweep" found by reading the
//! parsers very hard. This crate replaces that per-PR archaeology with a
//! mechanical pin: seed-driven structured mutators throw adversarial
//! inputs at the real entry points (`read_request_with`,
//! `EvalRequest::from_json`, `json::parse`) and assert the parser
//! *contract* — no panic, bounded reads, and every input lands in a
//! classified outcome (parsed / 400-class reject / 413 / severed) — while
//! RFC 9112 / JSON conformance tables and a `parse ∘ emit = id`
//! differential property pin the behaviour of everything the fuzzers ever
//! caught.
//!
//! # Determinism
//!
//! Everything is reproducible from `(target, seed, iteration)`:
//!
//! * Each iteration derives its own generator RNG and its own delivery
//!   RNG from the run seed via a SplitMix64 mix ([`case_rng`]), so case
//!   *i* is byte-identical no matter how many other cases ran, in which
//!   order, or whether a time cap cut the run short.
//! * Input bytes fold into a running FNV-1a fingerprint recorded in the
//!   [`FuzzReport`]; two runs with the same config must produce equal
//!   reports (`tests/fuzz_determinism.rs` asserts it).
//! * A failing case prints itself as a ready-to-paste `#[test]` with the
//!   input inlined as a byte-string literal — no corpus file required to
//!   reproduce, the repro *is* the regression test.
//!
//! # Budget
//!
//! Iteration counts come from the caller or `DIFFY_FUZZ_ITERS`; a wall
//! clock cap (`DIFFY_FUZZ_TIME_CAP_MS`) bounds CI latency. A truncated
//! run is marked in the report but stays deterministic per-case.
//!
//! # Entry points
//!
//! * `cargo run -p diffy-fuzz --bin fuzz -- all` (or `make fuzz`) — the
//!   standalone drivers, with failing inputs written to disk.
//! * `cargo test -p diffy-fuzz` (or `make fuzz-smoke`) — the bounded
//!   smoke pass CI runs: every driver, the conformance tables, the
//!   round-trip property and the determinism gate.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod artifact;
pub mod corpus;
pub mod http;
pub mod json;
pub mod proto;
pub mod session;

/// Default iteration budget when neither the caller nor
/// `DIFFY_FUZZ_ITERS` says otherwise: small enough to keep `cargo test`
/// fast, large enough to exercise every mutation class.
pub const DEFAULT_ITERS: u64 = 256;

/// Run parameters for one fuzz driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Base seed; every case RNG derives from it.
    pub seed: u64,
    /// Generated iterations (the seed corpus always runs in addition).
    pub iters: u64,
    /// Wall-clock cap; exceeding it truncates the run (recorded in the
    /// report) instead of failing it.
    pub time_cap: Option<Duration>,
}

impl FuzzConfig {
    /// A config from the environment: `DIFFY_FUZZ_ITERS` (default
    /// `default_iters`), `DIFFY_FUZZ_SEED` (default `0xD1FF`), and
    /// `DIFFY_FUZZ_TIME_CAP_MS` (default none).
    pub fn from_env(default_iters: u64) -> FuzzConfig {
        let parse_u64 = |name: &str| -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        };
        FuzzConfig {
            seed: parse_u64("DIFFY_FUZZ_SEED").unwrap_or(0xD1FF),
            iters: parse_u64("DIFFY_FUZZ_ITERS").unwrap_or(default_iters),
            time_cap: parse_u64("DIFFY_FUZZ_TIME_CAP_MS").map(Duration::from_millis),
        }
    }
}

/// The RNG for one case: run seed and iteration mixed through SplitMix64
/// so neighbouring iterations get uncorrelated streams, plus a `lane` so
/// input *generation* (lane 0) and input *delivery* — chunk sizes, tick
/// schedules (lane 1) — draw from independent streams. Lane separation is
/// what lets a repro reconstruct the exact input bytes without replaying
/// the delivery schedule.
pub fn case_rng(seed: u64, iteration: u64, lane: u64) -> StdRng {
    let mut x = seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ lane.rotate_left(32);
    // One SplitMix64 round decorrelates the lanes before seeding.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(x ^ (x >> 31))
}

/// 64-bit FNV-1a over `bytes`, chained from `acc` — the running input
/// fingerprint in a [`FuzzReport`].
pub fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    if acc == 0 {
        acc = 0xcbf2_9ce4_8422_2325;
    }
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

/// One parser-contract violation: the input that did it and how to
/// reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailingCase {
    /// Driver name (`http` / `json` / `protocol`).
    pub target: &'static str,
    /// Run seed the case derives from.
    pub seed: u64,
    /// Case id: `iter=N` for generated cases, `corpus=<name>` for seed
    /// corpus entries.
    pub case: String,
    /// The exact input bytes fed to the parser.
    pub input: Vec<u8>,
    /// The panic (or assertion) message the case died with.
    pub panic_msg: String,
}

impl FailingCase {
    /// Renders a ready-to-paste `#[test]` reproducing this failure: the
    /// input inlined as a byte-string literal, fed to the same driver
    /// check the fuzzer ran. Paste it next to the parser's other
    /// regression tests, fix, keep.
    pub fn regression_test(&self) -> String {
        let slug: String = self
            .case
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!(
            "// ---- ready-to-paste regression test (diffy-fuzz) ----\n\
             // reproduces: target={} seed={:#x} {}\n\
             // panicked with: {}\n\
             #[test]\n\
             fn fuzz_regression_{}_{}() {{\n\
             \x20   let input: &[u8] = {};\n\
             \x20   // Must classify cleanly (no panic, bounded reads):\n\
             \x20   diffy_fuzz::{}::check_input(input);\n\
             }}\n",
            self.target,
            self.seed,
            self.case,
            self.panic_msg.replace('\n', " / "),
            self.target,
            slug,
            rust_byte_string(&self.input),
            module_for(self.target),
        )
    }
}

fn module_for(target: &str) -> &'static str {
    match target {
        "http" => "http",
        "json" => "json",
        "session" => "session",
        "artifact" => "artifact",
        _ => "proto",
    }
}

/// Escapes `bytes` as a Rust byte-string literal (`b"..."`).
pub fn rust_byte_string(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() + 16);
    out.push_str("b\"");
    for &b in bytes {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\x{b:02x}")),
        }
    }
    out.push('"');
    out
}

/// What one fuzz run did: outcome census, input fingerprint, failures.
///
/// Two runs with equal `(driver, FuzzConfig)` and no time-cap truncation
/// must compare equal — the bit-determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// Driver name.
    pub target: &'static str,
    /// Seed the run derived from.
    pub seed: u64,
    /// Generated iterations actually run (excludes corpus entries).
    pub iters_run: u64,
    /// Whether the time cap cut the run short.
    pub truncated: bool,
    /// Cases per outcome label (e.g. `parsed`, `reject_400`, `severed`).
    pub outcomes: BTreeMap<String, u64>,
    /// Chained FNV-1a over every input fed to the parser, corpus first.
    pub input_fingerprint: u64,
    /// Contract violations, in discovery order.
    pub failures: Vec<FailingCase>,
}

impl FuzzReport {
    /// Total cases fed to the parser, corpus entries included.
    pub fn cases(&self) -> u64 {
        self.outcomes.values().sum::<u64>() + self.failures.len() as u64
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let outcomes: Vec<String> =
            self.outcomes.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!(
            "[{}] seed={:#x} cases={} fingerprint={:#018x}{}{} {}",
            self.target,
            self.seed,
            self.cases(),
            self.input_fingerprint,
            if self.truncated { " (time-capped)" } else { "" },
            if self.failures.is_empty() {
                String::new()
            } else {
                format!(" FAILURES={}", self.failures.len())
            },
            outcomes.join(" "),
        )
    }
}

/// One fuzz driver: a seed corpus, an input generator, and a checker that
/// feeds an input to the real parser asserting the parser contract.
/// Panics inside `check` are the failure signal — the runner catches
/// them, records the input, and keeps going.
pub trait Driver {
    /// Driver name, used in reports and repro tests.
    fn name(&self) -> &'static str;
    /// Named seed-corpus entries (every historical framing fix lives
    /// here); run before the generated cases on every run.
    fn corpus(&self) -> Vec<(String, Vec<u8>)>;
    /// Generates one input from the lane-0 RNG.
    fn generate(&self, rng: &mut StdRng) -> Vec<u8>;
    /// Feeds `input` to the parser under test, classifying the outcome.
    /// The lane-1 RNG drives delivery (chunking, tick schedules) only.
    fn check(&self, input: &[u8], delivery: &mut StdRng) -> String;
}

/// Runs `driver` under `cfg`: corpus first, then generated cases until
/// the iteration budget or time cap is exhausted.
pub fn run_driver(driver: &dyn Driver, cfg: &FuzzConfig) -> FuzzReport {
    let started = Instant::now();
    let mut report = FuzzReport {
        target: driver.name(),
        seed: cfg.seed,
        iters_run: 0,
        truncated: false,
        outcomes: BTreeMap::new(),
        input_fingerprint: 0,
        failures: Vec::new(),
    };
    for (name, input) in driver.corpus() {
        let mut delivery = case_rng(cfg.seed, fnv1a(0, name.as_bytes()), 1);
        run_case(driver, &mut report, format!("corpus={name}"), input, &mut delivery);
    }
    for i in 0..cfg.iters {
        if let Some(cap) = cfg.time_cap {
            if started.elapsed() > cap {
                report.truncated = true;
                break;
            }
        }
        let input = driver.generate(&mut case_rng(cfg.seed, i, 0));
        let mut delivery = case_rng(cfg.seed, i, 1);
        run_case(driver, &mut report, format!("iter={i}"), input, &mut delivery);
        report.iters_run += 1;
    }
    report
}

fn run_case(
    driver: &dyn Driver,
    report: &mut FuzzReport,
    case: String,
    input: Vec<u8>,
    delivery: &mut StdRng,
) {
    report.input_fingerprint = fnv1a(report.input_fingerprint, &input);
    match panic::catch_unwind(AssertUnwindSafe(|| driver.check(&input, delivery))) {
        Ok(label) => *report.outcomes.entry(label).or_insert(0) += 1,
        Err(payload) => {
            let panic_msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            report.failures.push(FailingCase {
                target: driver.name(),
                seed: report.seed,
                case,
                input,
                panic_msg,
            });
        }
    }
}

/// Every driver, in fixed order — what `fuzz all` and the smoke tests
/// run.
pub fn all_drivers() -> Vec<Box<dyn Driver>> {
    vec![
        Box::new(http::HttpDriver),
        Box::new(json::JsonDriver),
        Box::new(proto::ProtoDriver),
        Box::new(session::SessionDriver),
        Box::new(artifact::ArtifactDriver),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_lanes_and_iterations_are_decorrelated() {
        use rand::RngExt;
        let a = case_rng(7, 0, 0).random::<u64>();
        let b = case_rng(7, 0, 1).random::<u64>();
        let c = case_rng(7, 1, 0).random::<u64>();
        let d = case_rng(8, 0, 0).random::<u64>();
        assert!(a != b && a != c && a != d, "{a} {b} {c} {d}");
        // …and stable across calls.
        assert_eq!(a, case_rng(7, 0, 0).random::<u64>());
    }

    #[test]
    fn byte_string_literal_round_trips_through_rustc_rules() {
        assert_eq!(rust_byte_string(b"GET / HTTP/1.1\r\n"), r#"b"GET / HTTP/1.1\r\n""#);
        assert_eq!(rust_byte_string(b"\x00\xff\"\\"), r#"b"\x00\xff\"\\""#);
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_nonzero() {
        let ab = fnv1a(fnv1a(0, b"a"), b"b");
        let ba = fnv1a(fnv1a(0, b"b"), b"a");
        assert_ne!(ab, ba);
        assert_ne!(ab, 0);
    }

    #[test]
    fn regression_test_rendering_is_pasteable() {
        let case = FailingCase {
            target: "http",
            seed: 0xD1FF,
            case: "iter=3".to_string(),
            input: b"GET /\x00 HTTP/1.1\r\n\r\n".to_vec(),
            panic_msg: "boom".to_string(),
        };
        let test = case.regression_test();
        assert!(test.contains("fn fuzz_regression_http_iter_3()"), "{test}");
        assert!(test.contains(r#"b"GET /\x00 HTTP/1.1\r\n\r\n""#), "{test}");
        assert!(test.contains("diffy_fuzz::http::check_input(input);"), "{test}");
    }
}
