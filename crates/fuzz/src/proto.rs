//! Protocol-object fuzzing: build evaluation-request JSON documents with
//! mutated field types and ranges, feed them to
//! [`EvalRequest::from_json`] and [`BatchRequest::from_json`], and assert
//! validation never panics, every rejection carries a reason, and every
//! accepted request satisfies the documented range invariants.

use rand::rngs::StdRng;
use rand::RngExt;

use diffy_core::json::{parse, JsonValue};
use diffy_serve::protocol::{
    BatchRequest, EvalRequest, MAX_BATCH_ITEMS, MAX_RESOLUTION, MIN_RESOLUTION,
};

use crate::corpus;

/// Deterministic checker repro tests call: parses `input` as JSON (the
/// generator only emits valid JSON, but mutated corpus entries may not
/// be) and runs both request parsers over it, asserting the validation
/// contract. Returns the outcome label.
pub fn check_input(input: &[u8]) -> String {
    let text = String::from_utf8_lossy(input);
    let Ok(v) = parse(&text) else {
        return "not_json".to_string();
    };
    let single = EvalRequest::from_json(&v);
    let batch = BatchRequest::from_json(&v);
    if let Ok(req) = &single {
        assert!(
            (MIN_RESOLUTION..=MAX_RESOLUTION).contains(&req.resolution),
            "accepted out-of-range resolution {}",
            req.resolution
        );
        assert!(
            req.sample < req.dataset.samples(),
            "accepted out-of-range sample {} for {}",
            req.sample,
            req.dataset
        );
        // The derived option structs must be constructible for anything
        // validation accepted.
        let _ = req.workload();
        let _ = req.eval_options();
    }
    if let Err(reason) = &single {
        assert!(!reason.is_empty(), "single rejection with an empty reason");
    }
    match &batch {
        Ok(b) => {
            assert!(
                !b.items.is_empty() && b.items.len() <= MAX_BATCH_ITEMS,
                "accepted batch with {} items",
                b.items.len()
            );
            for item in &b.items {
                if let Err(reason) = item {
                    assert!(!reason.is_empty(), "batch item rejection with an empty reason");
                }
            }
        }
        Err(reason) => {
            assert!(!reason.is_empty(), "batch rejection with an empty reason");
        }
    }
    match (single.is_ok(), batch.is_ok()) {
        (true, _) => "single_ok".to_string(),
        (false, true) => "batch_ok".to_string(),
        (false, false) => "rejected".to_string(),
    }
}

/// The protocol-object driver.
pub struct ProtoDriver;

impl crate::Driver for ProtoDriver {
    fn name(&self) -> &'static str {
        "protocol"
    }

    fn corpus(&self) -> Vec<(String, Vec<u8>)> {
        corpus::proto_corpus().into_iter().map(|c| (c.name.to_string(), c.input)).collect()
    }

    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let doc = if rng.random_range(0..4u32) == 0 {
            gen_batch_body(rng)
        } else {
            gen_eval_body(rng)
        };
        doc.to_json().into_bytes()
    }

    fn check(&self, input: &[u8], _delivery: &mut StdRng) -> String {
        check_input(input)
    }
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

/// A request body mixing valid values, invalid values, wrong types and
/// boundary numbers, field by field.
pub fn gen_eval_body(rng: &mut StdRng) -> JsonValue {
    // Occasionally a non-object body.
    if rng.random_range(0..16u32) == 0 {
        return gen_wrong_type(rng);
    }
    let mut members: Vec<(String, JsonValue)> = Vec::new();
    let field = |name: &str, members: &mut Vec<(String, JsonValue)>, v: JsonValue| {
        members.push((name.to_string(), v));
    };
    if rng.random_range(0..8u32) != 0 {
        field("model", &mut members, gen_name_field(rng, &["IRCNN", "DnCNN", "FFDNet", "JointNet", "VDSR", "ircnn", "nope", ""]));
    }
    if rng.random_range(0..8u32) != 0 {
        field("dataset", &mut members, gen_name_field(rng, &["Kodak24", "HD33", "hd33", "McM18", "bogus", ""]));
    }
    if rng.random::<bool>() {
        field("sample", &mut members, gen_numeric_field(rng, &[0, 1, 17, 23, 24, 1 << 32, u64::MAX as i128, -1, (1 << 32) + 5]));
    }
    if rng.random::<bool>() {
        field(
            "resolution",
            &mut members,
            gen_numeric_field(
                rng,
                &[
                    MIN_RESOLUTION as i128 - 1,
                    MIN_RESOLUTION as i128,
                    64,
                    MAX_RESOLUTION as i128,
                    MAX_RESOLUTION as i128 + 1,
                    (1 << 32) + 64,
                    -64,
                ],
            ),
        );
    }
    if rng.random::<bool>() {
        field("seed", &mut members, gen_numeric_field(rng, &[0, 1, u64::MAX as i128, u64::MAX as i128 + 1, -1]));
    }
    if rng.random::<bool>() {
        field("arch", &mut members, gen_name_field(rng, &["Diffy", "VAA", "PRA", "SCNN", "scnn", "TPU", ""]));
    }
    if rng.random::<bool>() {
        field("scheme", &mut members, gen_name_field(rng, &["DeltaD16", "RawD16", "Profiled", "Ideal", "NoCompression", "deltad16", "zip"]));
    }
    if rng.random::<bool>() {
        field("memory", &mut members, gen_name_field(rng, &["DDR4-3200", "HBM2", "HBM3", "ddr4-3200", "SRAM"]));
    }
    if rng.random_range(0..4u32) == 0 {
        field("deadline_ms", &mut members, gen_numeric_field(rng, &[0, 50, u64::MAX as i128, -5]));
    }
    if rng.random_range(0..8u32) == 0 {
        field(&format!("x_{}", rng.random_range(0..99u32)), &mut members, gen_wrong_type(rng));
    }
    JsonValue::Object(members)
}

/// A batch body: defaults + items, with structural damage mixed in.
pub fn gen_batch_body(rng: &mut StdRng) -> JsonValue {
    let mut members: Vec<(String, JsonValue)> = Vec::new();
    match rng.random_range(0..4u32) {
        0 => {}
        1 => members.push(("defaults".to_string(), gen_eval_body(rng))),
        2 => members.push(("defaults".to_string(), gen_wrong_type(rng))),
        _ => members.push((
            "defaults".to_string(),
            JsonValue::object(vec![
                ("model", JsonValue::from("IRCNN")),
                ("dataset", JsonValue::from("Kodak24")),
            ]),
        )),
    }
    let items = match rng.random_range(0..6u32) {
        0 => None,
        1 => Some(JsonValue::Array(Vec::new())),
        2 => Some(gen_wrong_type(rng)),
        3 => {
            let n = rng.random_range(MAX_BATCH_ITEMS..MAX_BATCH_ITEMS + 3);
            Some(JsonValue::Array(vec![JsonValue::Object(Vec::new()); n + 1]))
        }
        _ => {
            let n = rng.random_range(1..5usize);
            Some(JsonValue::Array(
                (0..n)
                    .map(|_| {
                        if rng.random_range(0..5u32) == 0 {
                            gen_wrong_type(rng)
                        } else {
                            gen_eval_body(rng)
                        }
                    })
                    .collect(),
            ))
        }
    };
    if let Some(items) = items {
        members.push(("items".to_string(), items));
    }
    if rng.random_range(0..4u32) == 0 {
        members.push(("deadline_ms".to_string(), gen_numeric_field(rng, &[100, -1, u64::MAX as i128])));
    }
    JsonValue::Object(members)
}

/// A value for a name-vocabulary field: usually a string from `pool`
/// (valid and invalid spellings), sometimes a wrong type outright.
fn gen_name_field(rng: &mut StdRng, pool: &[&str]) -> JsonValue {
    if rng.random_range(0..6u32) == 0 {
        gen_wrong_type(rng)
    } else {
        JsonValue::from(*pick(rng, pool))
    }
}

/// A value for a numeric field: boundary integers from `pool`, floats,
/// or a wrong type.
fn gen_numeric_field(rng: &mut StdRng, pool: &[i128]) -> JsonValue {
    match rng.random_range(0..8u32) {
        0 => JsonValue::Float(*pick(rng, &[0.5, -1.5, 64.0, 1e18])),
        1 => gen_wrong_type(rng),
        _ => JsonValue::Int(*pick(rng, pool)),
    }
}

/// A structurally wrong value for any field.
fn gen_wrong_type(rng: &mut StdRng) -> JsonValue {
    match rng.random_range(0..6u32) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.random::<bool>()),
        2 => JsonValue::Array(vec![JsonValue::Int(1)]),
        3 => JsonValue::Object(vec![("k".to_string(), JsonValue::Null)]),
        4 => JsonValue::Str("not-a-number".to_string()),
        _ => JsonValue::Int(i128::from(rng.random::<i64>())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;
    use crate::Driver;

    #[test]
    fn generator_emits_valid_json_and_checker_classifies() {
        for i in 0..128 {
            let input = ProtoDriver.generate(&mut case_rng(31, i, 0));
            let label = check_input(&input);
            assert_ne!(label, "not_json", "{}", String::from_utf8_lossy(&input));
        }
    }

    #[test]
    fn fully_valid_bodies_classify_single_ok() {
        let input = br#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 64}"#;
        assert_eq!(check_input(input), "single_ok");
    }

    #[test]
    fn boundary_resolutions_obey_the_range_invariant() {
        for (res, ok) in [(15u64, false), (16, true), (512, true), (513, false)] {
            let body = format!(r#"{{"model": "IRCNN", "dataset": "Kodak24", "resolution": {res}}}"#);
            let label = check_input(body.as_bytes());
            assert_eq!(label == "single_ok", ok, "resolution {res} → {label}");
        }
    }
}
