//! The seed corpus: every parser bug this repo ever fixed by hand,
//! encoded as a named input. The fuzz drivers replay the corpus before
//! any generated case on every run, and the conformance tests
//! (`tests/http_conformance.rs`, `tests/json_conformance.rs`) pin the
//! exact expected classification for each entry — so a regression in a
//! historical fix fails by *name*, not by fishing a seed out of a log.

/// One corpus entry: a name (stable, test-friendly) and the input bytes.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Stable identifier; conformance tests key expectations on it.
    pub name: &'static str,
    /// The exact bytes fed to the parser.
    pub input: Vec<u8>,
}

fn case(name: &'static str, input: impl Into<Vec<u8>>) -> CorpusCase {
    CorpusCase { name, input: input.into() }
}

/// HTTP seed corpus. Entries tagged `pr4_` / `pr5_` / `pr6_` reproduce
/// the framing fixes those PRs shipped; the rest span the RFC 9112
/// request grammar.
pub fn http_corpus() -> Vec<CorpusCase> {
    let max_head = diffy_serve::http::MAX_HEAD_BYTES;
    let max_body = diffy_serve::http::MAX_BODY_BYTES;
    vec![
        // -- Baseline accepts --------------------------------------------
        case("get_simple", "GET /metrics HTTP/1.1\r\n\r\n"),
        case(
            "post_with_body",
            "POST /evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"k\": true}",
        ),
        case("http10_one_shot", "GET / HTTP/1.0\r\n\r\n"),
        case("leading_blank_lines", "\r\n\r\nGET / HTTP/1.1\r\n\r\n"),
        case("bare_lf_terminators", "GET / HTTP/1.1\nHost: x\n\n"),
        case("ows_around_header_value", "GET / HTTP/1.1\r\nHost: \t x \t\r\n\r\n"),
        // -- PR 4 framing fixes ------------------------------------------
        case(
            "pr4_conflicting_content_lengths",
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 11\r\n\r\nok",
        ),
        case(
            "pr4_repeated_identical_content_lengths",
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok",
        ),
        case("pr4_signed_content_length", "POST / HTTP/1.1\r\nContent-Length: +2\r\n\r\nok"),
        case("pr4_nondigit_content_length", "POST / HTTP/1.1\r\nContent-Length: 0x2\r\n\r\nok"),
        // -- PR 5 framing fixes ------------------------------------------
        case("pr5_space_in_header_name", "GET / HTTP/1.1\r\nx y: z\r\n\r\n"),
        case(
            "pr5_space_before_colon",
            "POST / HTTP/1.1\r\nContent-Length : 2\r\n\r\nok",
        ),
        case("pr5_obs_fold_continuation", "GET / HTTP/1.1\r\n folded: v\r\n\r\n"),
        case(
            "pr5_transfer_encoding_chunked",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        ),
        case(
            "pr5_te_cl_smuggle",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 2\r\n\r\nok",
        ),
        case(
            "pr5_overlong_header_line",
            format!("GET / HTTP/1.1\r\nx-pad: {}\r\nx-smuggled: y\r\n\r\n", "a".repeat(max_head + 10)),
        ),
        case(
            "pr5_overlong_request_line",
            format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(max_head + 10)),
        ),
        // -- PR 6 framing fixes (this harness's first catch) -------------
        case(
            "pr6_bare_cr_in_header_value",
            "GET / HTTP/1.1\r\nx: val\rX-Smuggled: y\r\n\r\n",
        ),
        case("pr6_trailing_cr_run", "GET / HTTP/1.1\r\r\n\r\n"),
        case(
            "pr6_nul_in_header_value",
            b"GET / HTTP/1.1\r\nx: a\x00b\r\n\r\n".to_vec(),
        ),
        case(
            "pr6_connection_lines_combine",
            "GET / HTTP/1.1\r\nConnection: keep-alive\r\nConnection: close\r\n\r\n",
        ),
        case(
            "pr6_content_length_overflow",
            "POST / HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n",
        ),
        case(
            "pr6_unicode_whitespace_content_length",
            "POST / HTTP/1.1\r\nContent-Length:\u{a0}5\r\n\r\nhello",
        ),
        // -- Grammar probes ----------------------------------------------
        case("double_space_request_line", "GET  / HTTP/1.1\r\n\r\n"),
        case("missing_version", "GET /\r\n\r\n"),
        case("http2_version", "GET / HTTP/2\r\n\r\n"),
        case("non_origin_path", "GET x HTTP/1.1\r\n\r\n"),
        case("empty_input", ""),
        case("truncated_head", "GET / HT"),
        case("truncated_body", "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
        case(
            "body_at_limit",
            {
                let mut v =
                    format!("POST / HTTP/1.1\r\nContent-Length: {max_body}\r\n\r\n").into_bytes();
                v.extend(vec![b'x'; max_body]);
                v
            },
        ),
        case(
            "body_over_limit",
            format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", max_body + 1),
        ),
        case(
            "pipelined_pair",
            "POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nokGET /metrics HTTP/1.1\r\n\r\n",
        ),
    ]
}

/// JSON seed corpus: the emit/parse bugs this harness caught plus the
/// error paths the conformance suite pins.
pub fn json_corpus() -> Vec<CorpusCase> {
    vec![
        case("empty_object", "{}"),
        case("nested_doc", r#"{"b": [1, 2.5, "x"], "a": {"k": null}}"#),
        case("u64_max", "18446744073709551615"),
        case("i128_bounds", "[170141183460469231731687303715884105727, -170141183460469231731687303715884105728]"),
        case("pr6_exponent_to_infinity", "1e999"),
        case("pr6_integral_to_infinity", format!("1{}", "0".repeat(400))),
        case("pr6_signed_hex_escape", r#""\u+041""#),
        case("lone_high_surrogate", r#""\ud800""#),
        case("surrogate_pair", r#""😀""#),
        case("duplicate_keys", r#"{"a": 1, "a": 2}"#),
        case("deep_nesting_bomb", "[".repeat(200) + &"]".repeat(200)),
        case("leading_zero", "01"),
        case("minus_zero", "-0"),
        case("trailing_garbage", "[1] garbage"),
        case("raw_control_in_string", "\"\u{1}\""),
        case("unterminated_string", "\"unterminated"),
    ]
}

/// Protocol seed corpus: the PR 4 truncation-cast fixes plus structural
/// batch probes.
pub fn proto_corpus() -> Vec<CorpusCase> {
    vec![
        case("minimal_valid", r#"{"model": "IRCNN", "dataset": "Kodak24"}"#),
        case(
            "full_valid",
            r#"{"model": "dncnn", "dataset": "hd33", "sample": 2, "resolution": 32,
                "seed": 9, "arch": "vaa", "scheme": "Ideal", "memory": "HBM2"}"#,
        ),
        case(
            "pr4_sample_u32_wraparound",
            r#"{"model": "IRCNN", "dataset": "Kodak24", "sample": 4294967296}"#,
        ),
        case(
            "pr4_resolution_u32_wraparound",
            r#"{"model": "IRCNN", "dataset": "Kodak24", "resolution": 4294967360}"#,
        ),
        case("negative_seed", r#"{"model": "IRCNN", "dataset": "Kodak24", "seed": -1}"#),
        case("float_sample", r#"{"model": "IRCNN", "dataset": "Kodak24", "sample": 1.5}"#),
        case("array_body", "[1]"),
        case(
            "batch_defaults_merge",
            r#"{"defaults": {"model": "IRCNN", "dataset": "Kodak24"},
                "items": [{}, {"model": "VDSR"}]}"#,
        ),
        case("batch_empty_items", r#"{"items": []}"#),
        case(
            "batch_oversized",
            format!(r#"{{"items": [{}]}}"#, vec!["{}"; 65].join(",")),
        ),
        case(
            "batch_item_wrong_type",
            r#"{"defaults": {"model": "IRCNN", "dataset": "Kodak24"}, "items": [[1]]}"#,
        ),
    ]
}

/// Session-lifecycle seed corpus: op scripts (see
/// `crate::session` for the grammar) covering every rejection class the
/// streaming subsystem promises to classify, plus the stateful orders —
/// expiry, eviction, double-close — that a stateless fuzzer would rarely
/// stumble into.
pub fn session_corpus() -> Vec<CorpusCase> {
    const CREATE: &str =
        r#"create {"model": "IRCNN", "resolution": 16, "frames": 2, "seed": 1}"#;
    vec![
        case(
            "full_happy_lifecycle",
            format!("{CREATE}\nframe s-1 {{\"frame\": 0}}\nframe s-1 {{\"frame\": 1}}\nclose s-1"),
        ),
        case("frame_before_create", "frame s-1 {}"),
        case("unknown_session_id", format!("{CREATE}\nframe s-99 {{}}")),
        case("malformed_session_id", format!("{CREATE}\nframe s-x {{}}\nclose ")),
        case(
            "expired_session_id",
            format!("{CREATE}\nadvance 51\nsweep\nframe s-1 {{}}\nclose s-1"),
        ),
        case("double_close", format!("{CREATE}\nclose s-1\nclose s-1")),
        case("wrong_resolution_frame", format!("{CREATE}\nframe s-1 {{\"resolution\": 32}}")),
        case(
            "wrong_frame_index",
            format!("{CREATE}\nframe s-1 {{\"frame\": 1}}\nframe s-1 {{\"frame\": -1}}"),
        ),
        case(
            "horizon_exhausted",
            format!("{CREATE}\nframe s-1 {{}}\nframe s-1 {{}}\nframe s-1 {{}}"),
        ),
        case(
            "eviction_then_frame",
            format!("{CREATE}\n{CREATE}\n{CREATE}\nframe s-1 {{}}\nframe s-3 {{}}"),
        ),
        case("malformed_create_body", "create {"),
        case("create_missing_model", "create {}"),
        case("create_unknown_model", r#"create {"model": "nope"}"#),
        case("create_zero_frames", r#"create {"model": "IRCNN", "frames": 0}"#),
        case("create_invalid_mode", r#"create {"model": "IRCNN", "mode": "psychic"}"#),
        case("create_non_utf8_noise", b"create {\"model\": \"IRCNN\", \xff}".to_vec()),
        case("frame_malformed_body", format!("{CREATE}\nframe s-1 {{")),
        case("empty_script", ""),
    ]
}

/// Artifact-store seed corpus: one named entry per decode failure class
/// (see `crate::artifact`), each derived from a *real* artifact document
/// by the same mutation a torn write, bit rot, or version migration
/// would apply. `artifact::tests::corpus_entries_classify_as_named` pins
/// the expected classification for every entry.
pub fn artifact_corpus() -> Vec<CorpusCase> {
    let base = crate::artifact::base_document();
    // A payload with a *correct* fingerprint but a broken shape: the only
    // way to reach the payload-class rejection, since any blind byte
    // mutation trips the fingerprint check first.
    let broken_payload = r#"{"model": "IRCNN"}"#;
    let canonical = diffy_core::json::parse(broken_payload)
        .expect("literal payload parses")
        .to_json();
    let honest_fingerprint =
        diffy_core::artifact::fnv1a64(canonical.as_bytes());
    vec![
        case("valid_artifact", base),
        case("truncated_halfway", &base[..base.len() / 2]),
        case("bad_format_marker", base.replace("diffy-artifact", "diffy-artefact")),
        case("missing_format_marker", base.replace("\"format\"", "\"fmt\"")),
        case("version_skew_future", base.replace("\"version\":1", "\"version\":999")),
        case("fingerprint_flip", {
            // Perturb the *last* fingerprint digit: the value changes but
            // stays in u64 range, so only the fingerprint check can trip.
            let start = base.find("\"fingerprint\":").expect("fingerprint field") + 14;
            let digits = base[start..].bytes().take_while(u8::is_ascii_digit).count();
            let pos = start + digits - 1;
            let (head, tail) = base.split_at(pos);
            let old = tail.as_bytes()[0];
            let new = if old == b'9' { b'1' } else { old + 1 };
            format!("{head}{}{}", new as char, &tail[1..])
        }),
        case("interior_json_mangled", base.replace("\"cycles\":", "\"cycles\":1")),
        case(
            "payload_shape_with_honest_fingerprint",
            format!(
                "{{\"format\": \"diffy-artifact\", \"version\": 1, \"key\": \"k\", \
                 \"fingerprint\": {honest_fingerprint}, \"payload\": {canonical}}}"
            ),
        ),
        case("not_json", "{"),
        case("empty_file", ""),
        case("non_utf8", b"\xff\xfe{}".to_vec()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_names_are_unique_within_each_target() {
        for corpus in
            [http_corpus(), json_corpus(), proto_corpus(), session_corpus(), artifact_corpus()]
        {
            let mut seen = HashSet::new();
            for c in &corpus {
                assert!(seen.insert(c.name), "duplicate corpus name {}", c.name);
            }
        }
    }
}
