//! Frame sequences for the temporal-delta extension.
//!
//! The paper's related work (§V) contrasts Diffy's *spatial* deltas with
//! CBInfer's *temporal* (cross-frame) deltas and notes "the two concepts
//! could potentially be combined". Studying that combination needs video:
//! this module renders a scene once at an extended width and pans a
//! crop window across it frame by frame — the dominant motion model of
//! handheld/vehicle footage — with optional per-frame sensor noise.

use crate::scenes::{render_scene, SceneKind};
use crate::synth::smooth_noise;
use diffy_tensor::Tensor3;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Renders `frames` consecutive frames of a panning scene.
///
/// Each frame is `h × w`; the camera pans `pan_px` pixels per frame
/// horizontally. `noise` adds independent per-frame sensor noise of the
/// given amplitude (0 = noiseless pan).
///
/// # Panics
///
/// Panics if `frames == 0` or `h == 0 || w == 0`.
pub fn pan_sequence(
    kind: SceneKind,
    h: usize,
    w: usize,
    frames: usize,
    pan_px: usize,
    noise: f32,
    seed: u64,
) -> Vec<Tensor3<f32>> {
    assert!(frames > 0, "need at least one frame");
    assert!(h > 0 && w > 0, "empty frame");
    let full_w = w + pan_px * (frames - 1);
    let wide = render_scene(kind, h, full_w, seed);
    (0..frames).map(|f| nth_frame(&wide, h, w, pan_px, noise, seed, f)).collect()
}

/// Renders frame `frame` of the sequence [`pan_sequence`] would produce
/// for the same parameters, without materializing the other frames.
///
/// Each frame is a pure function of the full parameter set — including
/// the total `frames` horizon, which fixes the width of the underlying
/// wide scene — so a streaming consumer can pull frames one at a time
/// and still land bit-identical to the batch path.
///
/// # Panics
///
/// Panics if `frame >= frames` or the sequence parameters are invalid
/// (see [`pan_sequence`]).
#[allow(clippy::too_many_arguments)] // pan_sequence's signature + the frame index
pub fn pan_frame(
    kind: SceneKind,
    h: usize,
    w: usize,
    frames: usize,
    pan_px: usize,
    noise: f32,
    seed: u64,
    frame: usize,
) -> Tensor3<f32> {
    assert!(frames > 0, "need at least one frame");
    assert!(frame < frames, "frame {frame} past the {frames}-frame horizon");
    assert!(h > 0 && w > 0, "empty frame");
    let full_w = w + pan_px * (frames - 1);
    let wide = render_scene(kind, h, full_w, seed);
    nth_frame(&wide, h, w, pan_px, noise, seed, frame)
}

/// Crops frame `f` out of the wide pan scene and applies its per-frame
/// sensor noise — the one definition both [`pan_sequence`] and
/// [`pan_frame`] share.
fn nth_frame(
    wide: &Tensor3<f32>,
    h: usize,
    w: usize,
    pan_px: usize,
    noise: f32,
    seed: u64,
    f: usize,
) -> Tensor3<f32> {
    let x0 = f * pan_px;
    let mut frame = Tensor3::<f32>::new(3, h, w);
    for c in 0..3 {
        for y in 0..h {
            for x in 0..w {
                *frame.at_mut(c, y, x) = *wide.at(c, y, x0 + x);
            }
        }
    }
    if noise > 0.0 {
        let mut rng = StdRng::seed_from_u64(seed ^ (f as u64) << 17 ^ 0x7E4);
        let n = smooth_noise(&mut rng, h, w, 0, 0);
        for c in 0..3 {
            for y in 0..h {
                for x in 0..w {
                    let v = frame.at_mut(c, y, x);
                    *v = (*v + noise * (n.at(0, y, x) - 0.5)).clamp(0.0, 1.0);
                }
            }
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    #[test]
    fn sequence_has_requested_shape() {
        let seq = pan_sequence(SceneKind::Nature, 16, 24, 3, 2, 0.0, 1);
        assert_eq!(seq.len(), 3);
        for f in &seq {
            assert_eq!(f.shape().as_tuple(), (3, 16, 24));
        }
    }

    #[test]
    fn pan_shifts_content() {
        let seq = pan_sequence(SceneKind::City, 16, 24, 2, 3, 0.0, 2);
        // Frame 1 shifted left by 3 equals frame 0's columns 3..
        let a = &seq[0];
        let b = &seq[1];
        for c in 0..3 {
            for y in 0..16 {
                for x in 0..21 {
                    assert_eq!(a.at(c, y, x + 3), b.at(c, y, x));
                }
            }
        }
    }

    #[test]
    fn adjacent_frames_are_similar_but_not_identical() {
        let seq = pan_sequence(SceneKind::Nature, 24, 32, 2, 1, 0.01, 3);
        let d = mse(&seq[0], &seq[1]);
        assert!(d > 0.0, "frames should differ");
        assert!(d < 0.05, "frames should be temporally correlated: mse {d}");
    }

    #[test]
    fn zero_pan_zero_noise_gives_static_video() {
        let seq = pan_sequence(SceneKind::Texture, 8, 8, 3, 0, 0.0, 4);
        assert_eq!(seq[0].as_slice(), seq[1].as_slice());
        assert_eq!(seq[1].as_slice(), seq[2].as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn rejects_empty_sequence() {
        let _ = pan_sequence(SceneKind::Nature, 8, 8, 0, 1, 0.0, 1);
    }

    #[test]
    fn single_frame_path_matches_batch_path_bitwise() {
        // pan_frame(f) must equal pan_sequence(..)[f] exactly, noise
        // included — the streaming serve layer relies on this identity.
        for kind in [SceneKind::Nature, SceneKind::City, SceneKind::Texture] {
            let seq = pan_sequence(kind, 12, 20, 4, 2, 0.03, 11);
            for (f, batch) in seq.iter().enumerate() {
                let one = pan_frame(kind, 12, 20, 4, 2, 0.03, 11, f);
                assert_eq!(one.as_slice(), batch.as_slice(), "{kind:?} frame {f}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn pan_frame_rejects_out_of_horizon_index() {
        let _ = pan_frame(SceneKind::City, 8, 8, 3, 1, 0.0, 1, 3);
    }
}
