//! Image fidelity metrics used to sanity-check the imaging pipelines.

use diffy_tensor::Tensor3;

/// Mean squared error between two images of identical shape.
///
/// # Panics
///
/// Panics if the shapes differ or the images are empty.
pub fn mse(a: &Tensor3<f32>, b: &Tensor3<f32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    assert!(!a.is_empty(), "mse of empty image");
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Peak signal-to-noise ratio in dB for `[0, 1]` images.
///
/// Returns `f64::INFINITY` for identical images.
pub fn psnr(a: &Tensor3<f32>, b: &Tensor3<f32>) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * m.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let a = Tensor3::<f32>::filled(1, 4, 4, 0.5);
        assert_eq!(mse(&a, &a), 0.0);
        assert!(psnr(&a, &a).is_infinite());
    }

    #[test]
    fn psnr_of_known_error() {
        let a = Tensor3::<f32>::filled(1, 2, 2, 0.0);
        let b = Tensor3::<f32>::filled(1, 2, 2, 0.1);
        assert!((mse(&a, &b) - 0.01).abs() < 1e-9);
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn smaller_error_means_higher_psnr() {
        let a = Tensor3::<f32>::filled(1, 2, 2, 0.0);
        let near = Tensor3::<f32>::filled(1, 2, 2, 0.05);
        let far = Tensor3::<f32>::filled(1, 2, 2, 0.2);
        assert!(psnr(&a, &near) > psnr(&a, &far));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mse_rejects_shape_mismatch() {
        let a = Tensor3::<f32>::new(1, 2, 2);
        let b = Tensor3::<f32>::new(1, 2, 3);
        let _ = mse(&a, &b);
    }
}
