//! Degradations applied to clean images: the model *inputs* of the
//! denoising, demosaicking and super-resolution pipelines.

use diffy_tensor::Tensor3;
use rand::RngExt;

/// Adds white Gaussian noise with standard deviation `sigma` (in `[0,1]`
/// intensity units), clamping to `[0, 1]` — the degradation model of the
/// DnCNN/FFDNet/IRCNN denoising literature.
pub fn add_awgn<R: RngExt>(img: &Tensor3<f32>, rng: &mut R, sigma: f32) -> Tensor3<f32> {
    img.map(|v| {
        // Box–Muller from two uniforms; one normal sample per pixel.
        let u1: f32 = rng.random::<f32>().max(1e-12);
        let u2: f32 = rng.random();
        let n = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        (v + sigma * n).clamp(0.0, 1.0)
    })
}

/// Subsamples a 3-channel RGB image with an RGGB Bayer pattern into a
/// single-channel mosaic (the raw sensor image a joint
/// demosaicking+denoising network consumes).
///
/// # Panics
///
/// Panics if the image does not have exactly 3 channels.
pub fn bayer_mosaic(img: &Tensor3<f32>) -> Tensor3<f32> {
    let s = img.shape();
    assert_eq!(s.c, 3, "bayer mosaic needs an RGB image");
    let mut out = Tensor3::<f32>::new(1, s.h, s.w);
    for y in 0..s.h {
        for x in 0..s.w {
            let c = match (y % 2, x % 2) {
                (0, 0) => 0,         // R
                (0, 1) | (1, 0) => 1, // G
                _ => 2,              // B
            };
            *out.at_mut(0, y, x) = *img.at(c, y, x);
        }
    }
    out
}

/// Packs a single-channel Bayer mosaic into a half-resolution 4-channel
/// image (R, G0, G1, B planes) — the packed input format of joint
/// demosaicking networks (Gharbi et al.).
///
/// Odd trailing rows/columns are dropped.
///
/// # Panics
///
/// Panics if the mosaic is not single-channel.
pub fn pack_bayer(mosaic: &Tensor3<f32>) -> Tensor3<f32> {
    let s = mosaic.shape();
    assert_eq!(s.c, 1, "pack_bayer needs a single-channel mosaic");
    let oh = s.h / 2;
    let ow = s.w / 2;
    let mut out = Tensor3::<f32>::new(4, oh, ow);
    for y in 0..oh {
        for x in 0..ow {
            *out.at_mut(0, y, x) = *mosaic.at(0, 2 * y, 2 * x); // R
            *out.at_mut(1, y, x) = *mosaic.at(0, 2 * y, 2 * x + 1); // G0
            *out.at_mut(2, y, x) = *mosaic.at(0, 2 * y + 1, 2 * x); // G1
            *out.at_mut(3, y, x) = *mosaic.at(0, 2 * y + 1, 2 * x + 1); // B
        }
    }
    out
}

/// Downscales by integer `factor` with box averaging, then upscales back
/// with nearest-neighbour replication: the blurry low-resolution input a
/// super-resolution network (VDSR) receives after bicubic-style upscaling.
///
/// Trailing rows/columns that do not fill a block are dropped, so the
/// output dimensions are `(h / factor) * factor` etc.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn degrade_resolution(img: &Tensor3<f32>, factor: usize) -> Tensor3<f32> {
    assert!(factor > 0, "factor must be positive");
    let s = img.shape();
    let oh = s.h / factor;
    let ow = s.w / factor;
    let mut out = Tensor3::<f32>::new(s.c, oh * factor, ow * factor);
    for c in 0..s.c {
        for by in 0..oh {
            for bx in 0..ow {
                let mut acc = 0.0f32;
                for j in 0..factor {
                    for i in 0..factor {
                        acc += *img.at(c, by * factor + j, bx * factor + i);
                    }
                }
                let mean = acc / (factor * factor) as f32;
                for j in 0..factor {
                    for i in 0..factor {
                        *out.at_mut(c, by * factor + j, bx * factor + i) = mean;
                    }
                }
            }
        }
    }
    out
}

/// JPEG-like blockiness: blends each pixel toward its 8×8 block mean by
/// `strength` (0 = untouched, 1 = fully blocky). Models the "real noise
/// such as from … JPEG compression" of the RNI15 dataset.
pub fn add_block_artifacts(img: &Tensor3<f32>, strength: f32) -> Tensor3<f32> {
    let s = img.shape();
    let mut out = img.clone();
    let bs = 8usize;
    for c in 0..s.c {
        for by in (0..s.h).step_by(bs) {
            for bx in (0..s.w).step_by(bs) {
                let ylim = (by + bs).min(s.h);
                let xlim = (bx + bs).min(s.w);
                let mut acc = 0.0f32;
                let mut n = 0f32;
                for y in by..ylim {
                    for x in bx..xlim {
                        acc += *img.at(c, y, x);
                        n += 1.0;
                    }
                }
                let mean = acc / n;
                for y in by..ylim {
                    for x in bx..xlim {
                        let v = img.at(c, y, x);
                        *out.at_mut(c, y, x) = v * (1.0 - strength) + mean * strength;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn awgn_stays_in_range_and_perturbs() {
        let img = Tensor3::<f32>::filled(1, 16, 16, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = add_awgn(&img, &mut rng, 0.1);
        assert!(noisy.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let mse: f32 =
            noisy.iter().zip(img.iter()).map(|(&a, &b)| (a - b) * (a - b)).sum::<f32>()
                / noisy.len() as f32;
        assert!(mse > 0.001 && mse < 0.05, "mse={mse} not near sigma^2");
    }

    #[test]
    fn awgn_zero_sigma_is_identity() {
        let img = Tensor3::<f32>::filled(1, 4, 4, 0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let out = add_awgn(&img, &mut rng, 0.0);
        assert_eq!(out.as_slice(), img.as_slice());
    }

    #[test]
    fn bayer_mosaic_picks_pattern_channels() {
        let mut img = Tensor3::<f32>::new(3, 2, 2);
        *img.at_mut(0, 0, 0) = 0.1; // R at (0,0)
        *img.at_mut(1, 0, 1) = 0.2; // G at (0,1)
        *img.at_mut(1, 1, 0) = 0.3; // G at (1,0)
        *img.at_mut(2, 1, 1) = 0.4; // B at (1,1)
        let m = bayer_mosaic(&img);
        assert_eq!(m.as_slice(), &[0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn pack_bayer_produces_four_half_res_planes() {
        let mosaic = Tensor3::from_vec(1, 2, 2, vec![0.1, 0.2, 0.3, 0.4]);
        let packed = pack_bayer(&mosaic);
        assert_eq!(packed.shape().as_tuple(), (4, 1, 1));
        assert_eq!(packed.as_slice(), &[0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn degrade_resolution_averages_blocks() {
        let img = Tensor3::from_vec(1, 2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let d = degrade_resolution(&img, 2);
        assert!(d.iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn degrade_factor_one_is_identity() {
        let img = Tensor3::from_vec(1, 2, 3, vec![0.0, 0.5, 1.0, 0.2, 0.4, 0.6]);
        assert_eq!(degrade_resolution(&img, 1).as_slice(), img.as_slice());
    }

    #[test]
    fn block_artifacts_full_strength_flattens_blocks() {
        let data: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();
        let img = Tensor3::from_vec(1, 8, 8, data);
        let blocky = add_block_artifacts(&img, 1.0);
        let first = *blocky.at(0, 0, 0);
        assert!(blocky.iter().all(|&v| (v - first).abs() < 1e-6));
    }
}
