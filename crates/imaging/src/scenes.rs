//! Composite scene presets.
//!
//! The paper's HD33 dataset contains "HD frames depicting nature, city and
//! texture scenes" (Table II). Each [`SceneKind`] preset composes the
//! primitive generators of [`crate::synth`] into a 3-channel RGB image with
//! the corresponding statistics:
//!
//! * **Nature** — large smooth regions (sky, water) with soft transitions
//!   and moderate texture: the most spatially correlated case.
//! * **City** — smooth background broken by many hard rectangular edges.
//! * **Texture** — dominated by fine oriented gratings: the hardest case
//!   for differential processing (deltas peak at every oscillation).

use crate::synth::{
    add_rectangles, blend, grating, linear_gradient, smooth_noise, stack_channels,
};
use diffy_tensor::Tensor3;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scene category of the HD33 stand-in corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Smooth, highly correlated content.
    Nature,
    /// Piecewise-constant regions with hard edges.
    City,
    /// Fine oscillatory texture.
    Texture,
}

impl SceneKind {
    /// All categories, in the cycling order used by the dataset registry.
    pub const ALL: [SceneKind; 3] = [SceneKind::Nature, SceneKind::City, SceneKind::Texture];
}

/// Renders a seeded 3-channel scene of the given kind.
///
/// # Panics
///
/// Panics if `h == 0 || w == 0`.
///
/// # Example
///
/// ```
/// use diffy_imaging::scenes::{render_scene, SceneKind};
/// let img = render_scene(SceneKind::Nature, 32, 48, 42);
/// assert_eq!(img.shape().as_tuple(), (3, 32, 48));
/// ```
pub fn render_scene(kind: SceneKind, h: usize, w: usize, seed: u64) -> Tensor3<f32> {
    assert!(h > 0 && w > 0, "empty scene");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_E57A_7E11_0000);
    let planes: Vec<Tensor3<f32>> = (0..3)
        .map(|ch| render_plane(kind, h, w, &mut rng, ch))
        .collect();
    stack_channels(&planes)
}

fn render_plane(
    kind: SceneKind,
    h: usize,
    w: usize,
    rng: &mut StdRng,
    channel: usize,
) -> Tensor3<f32> {
    // Channels share large-scale structure (same rng stream keeps them
    // loosely correlated, like real RGB planes) but differ in detail.
    match kind {
        SceneKind::Nature => {
            let base = smooth_noise(rng, h, w, (w / 16).max(1), 2);
            let detail = smooth_noise(rng, h, w, 1, 1);
            let sky = linear_gradient(h, w, std::f32::consts::FRAC_PI_2);
            let m1 = Tensor3::<f32>::filled(1, h, w, 0.3);
            let mixed = blend(&base, &detail, &m1);
            let m2 = Tensor3::<f32>::filled(1, h, w, 0.35 + 0.05 * channel as f32);
            blend(&mixed, &sky, &m2)
        }
        SceneKind::City => {
            let mut base = smooth_noise(rng, h, w, (w / 8).max(1), 1);
            let count = ((h * w) / 256).clamp(4, 64);
            add_rectangles(&mut base, rng, count);
            // A little sensor-level detail so the field is not exactly
            // piecewise constant.
            let detail = smooth_noise(rng, h, w, 1, 1);
            let m = Tensor3::<f32>::filled(1, h, w, 0.08);
            blend(&base, &detail, &m)
        }
        SceneKind::Texture => {
            let period = rng.random_range(3.0..9.0_f32);
            let angle = rng.random_range(0.0..std::f32::consts::PI);
            let tex = grating(h, w, period, angle, 0.8);
            let base = smooth_noise(rng, h, w, (w / 12).max(1), 2);
            let m = Tensor3::<f32>::filled(1, h, w, 0.55);
            blend(&base, &tex, &m)
        }
    }
}

/// Mean absolute difference between horizontally adjacent pixels — a
/// scalar measure of (inverse) spatial correlation used by tests and the
/// dataset documentation.
pub fn roughness(img: &Tensor3<f32>) -> f32 {
    let s = img.shape();
    if s.w < 2 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    let mut n = 0u64;
    for c in 0..s.c {
        for y in 0..s.h {
            let row = img.row(c, y);
            for x in 1..s.w {
                acc += (row[x] - row[x - 1]).abs() as f64;
                n += 1;
            }
        }
    }
    (acc / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_have_three_channels_in_range() {
        for kind in SceneKind::ALL {
            let img = render_scene(kind, 24, 32, 1);
            assert_eq!(img.shape().as_tuple(), (3, 24, 32));
            assert!(
                img.iter().all(|&v| (-1e-5..=1.0 + 1e-5).contains(&v)),
                "{kind:?} out of range"
            );
        }
    }

    #[test]
    fn scenes_are_deterministic() {
        let a = render_scene(SceneKind::City, 16, 16, 9);
        let b = render_scene(SceneKind::City, 16, 16, 9);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = render_scene(SceneKind::City, 16, 16, 10);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn texture_is_rougher_than_nature() {
        // The defining statistic of the categories: averaged over seeds,
        // texture scenes change faster pixel-to-pixel than nature scenes.
        let avg = |kind| {
            (0..4)
                .map(|s| roughness(&render_scene(kind, 48, 48, s)))
                .sum::<f32>()
                / 4.0
        };
        let nature = avg(SceneKind::Nature);
        let texture = avg(SceneKind::Texture);
        assert!(
            texture > nature * 2.0,
            "texture {texture} should be rougher than nature {nature}"
        );
    }

    #[test]
    fn all_scenes_are_spatially_correlated() {
        // Even the roughest category is far smoother than white noise
        // (whose expected |Δ| for U[0,1] pixels is 1/3).
        for kind in SceneKind::ALL {
            let r = roughness(&render_scene(kind, 48, 48, 3));
            assert!(r < 0.25, "{kind:?} roughness {r} too close to white noise");
        }
    }

    #[test]
    fn roughness_of_constant_image_is_zero() {
        let img = Tensor3::<f32>::filled(3, 4, 4, 0.7);
        assert_eq!(roughness(&img), 0.0);
    }
}
