//! Synthetic computational-imaging workloads.
//!
//! The paper evaluates on seven image corpora (Table II: CBSD68, McMaster,
//! Kodak24, RNI15, LIVE1, Set5+Set14, HD33). Those images are not
//! redistributable, so this crate generates *procedural stand-ins* that
//! preserve the one property Diffy exploits: **spatial correlation** —
//! neighbouring pixels are close in value, with edges as localized
//! exceptions. Each generator is seeded, so every experiment is
//! reproducible bit-for-bit.
//!
//! * [`synth`] — primitive field generators: low-pass filtered noise
//!   (natural 1/f-like spectra), gradients, geometric shapes, oscillatory
//!   textures.
//! * [`scenes`] — composite scene presets for the HD33 categories
//!   (nature / city / texture).
//! * [`datasets`] — a registry mirroring Table II (names, sample counts,
//!   resolutions) with seeded generation.
//! * [`noise`] — AWGN, Bayer mosaicking and JPEG-like block artifacts for
//!   the denoising/demosaicking model inputs.
//! * [`barbara`] — a procedural stand-in for the classic "Barbara" test
//!   image used in Fig. 2 (smooth regions + fine oriented stripes).
//! * [`video`] — panning frame sequences for the temporal-delta
//!   extension (§V of the paper).
//! * [`metrics`] — MSE/PSNR for sanity-checking the imaging pipelines.
//!
//! Images are `Tensor3<f32>` in `[0, 1]`; [`to_fixed`] quantizes them into
//! the accelerator's 16-bit fixed-point domain.


#![warn(missing_docs)]

pub mod barbara;
pub mod datasets;
pub mod metrics;
pub mod noise;
pub mod scenes;
pub mod synth;
pub mod video;

use diffy_tensor::{Quantizer, Tensor3};

/// Quantizes a real-valued image into the 16-bit fixed-point activation
/// domain.
///
/// # Example
///
/// ```
/// use diffy_tensor::{Tensor3, Quantizer};
/// use diffy_imaging::to_fixed;
/// let img = Tensor3::<f32>::filled(1, 2, 2, 0.5);
/// let q = Quantizer::new(8);
/// let fx = to_fixed(&img, q);
/// assert!(fx.iter().all(|&v| v == 128));
/// ```
pub fn to_fixed(img: &Tensor3<f32>, q: Quantizer) -> Tensor3<i16> {
    img.map(|v| q.quantize(v))
}

/// Clamps an image into `[0, 1]`.
pub fn clamp01(img: &Tensor3<f32>) -> Tensor3<f32> {
    img.map(|v| v.clamp(0.0, 1.0))
}
