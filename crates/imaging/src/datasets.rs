//! Dataset registry mirroring Table II of the paper.
//!
//! Each entry reproduces the *name*, *sample count* and *resolution range*
//! of the original corpus; the pixel content is generated procedurally
//! (see the crate docs for why this substitution preserves the studied
//! behaviour). Sample `i` of a dataset is deterministic in `(dataset,
//! i)`.

use crate::scenes::{render_scene, SceneKind};
use diffy_tensor::Tensor3;

/// One dataset of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Test section of the Berkeley segmentation dataset (68 × 481×321).
    Cbsd68,
    /// Modified McMaster CDM dataset (18 × 500×500).
    McMaster,
    /// Kodak dataset (24 × 500×500).
    Kodak24,
    /// Real-noise images, camera/JPEG noise (15 × 370×280–700×700).
    Rni15,
    /// Super-resolution evaluation set (29 × 634×438–768×512).
    Live1,
    /// Set5 + Set14 (19 × 256×256–720×576).
    Set5Set14,
    /// HD frames: nature, city and texture scenes (33 × 1920×1080).
    Hd33,
}

impl DatasetId {
    /// All datasets, in Table II order.
    pub const ALL: [DatasetId; 7] = [
        DatasetId::Cbsd68,
        DatasetId::McMaster,
        DatasetId::Kodak24,
        DatasetId::Rni15,
        DatasetId::Live1,
        DatasetId::Set5Set14,
        DatasetId::Hd33,
    ];

    /// The dataset's name as Table II spells it.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Cbsd68 => "CBSD68",
            DatasetId::McMaster => "McMaster",
            DatasetId::Kodak24 => "Kodak24",
            DatasetId::Rni15 => "RNI15",
            DatasetId::Live1 => "LIVE1",
            DatasetId::Set5Set14 => "Set5+Set14",
            DatasetId::Hd33 => "HD33",
        }
    }

    /// Number of samples in the original corpus.
    pub fn samples(&self) -> usize {
        match self {
            DatasetId::Cbsd68 => 68,
            DatasetId::McMaster => 18,
            DatasetId::Kodak24 => 24,
            DatasetId::Rni15 => 15,
            DatasetId::Live1 => 29,
            DatasetId::Set5Set14 => 19,
            DatasetId::Hd33 => 33,
        }
    }

    /// Native resolution `(h, w)` of sample `idx` (the ranged datasets
    /// interpolate across their published span).
    pub fn resolution(&self, idx: usize) -> (usize, usize) {
        let lerp = |lo: usize, hi: usize| {
            if self.samples() <= 1 {
                lo
            } else {
                lo + (hi - lo) * (idx % self.samples()) / (self.samples() - 1)
            }
        };
        match self {
            DatasetId::Cbsd68 => (321, 481),
            DatasetId::McMaster | DatasetId::Kodak24 => (500, 500),
            DatasetId::Rni15 => (lerp(280, 700), lerp(370, 700)),
            DatasetId::Live1 => (lerp(438, 512), lerp(634, 768)),
            DatasetId::Set5Set14 => (lerp(256, 576), lerp(256, 720)),
            DatasetId::Hd33 => (1080, 1920),
        }
    }

    /// Scene kind of sample `idx` (cycled; HD33 explicitly mixes the three
    /// categories, the photographic sets are mostly nature/city).
    pub fn scene_kind(&self, idx: usize) -> SceneKind {
        match self {
            DatasetId::Hd33 => SceneKind::ALL[idx % 3],
            DatasetId::McMaster => SceneKind::ALL[idx % 2], // nature/city
            DatasetId::Rni15 => SceneKind::City,
            _ => SceneKind::ALL[idx % 3],
        }
    }

    /// Generates sample `idx` at its native resolution.
    pub fn sample(&self, idx: usize) -> Tensor3<f32> {
        let (h, w) = self.resolution(idx);
        self.sample_scaled(idx, h, w)
    }

    /// Generates sample `idx` at an explicit resolution — the traces are
    /// gathered at moderate sizes and scaled analytically (DESIGN.md §2.3).
    pub fn sample_scaled(&self, idx: usize, h: usize, w: usize) -> Tensor3<f32> {
        let seed = (dataset_ordinal(*self) as u64) << 32 | idx as u64;
        render_scene(self.scene_kind(idx), h, w, seed)
    }
}

fn dataset_ordinal(d: DatasetId) -> usize {
    DatasetId::ALL.iter().position(|&x| x == d).expect("in ALL")
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        let total: usize = DatasetId::ALL.iter().map(|d| d.samples()).sum();
        assert_eq!(total, 68 + 18 + 24 + 15 + 29 + 19 + 33);
    }

    #[test]
    fn hd33_is_full_hd() {
        for idx in [0, 16, 32] {
            assert_eq!(DatasetId::Hd33.resolution(idx), (1080, 1920));
        }
    }

    #[test]
    fn ranged_resolutions_stay_in_span() {
        for idx in 0..DatasetId::Rni15.samples() {
            let (h, w) = DatasetId::Rni15.resolution(idx);
            assert!((280..=700).contains(&h));
            assert!((370..=700).contains(&w));
        }
    }

    #[test]
    fn samples_are_deterministic_and_distinct() {
        let a = DatasetId::Kodak24.sample_scaled(0, 24, 24);
        let b = DatasetId::Kodak24.sample_scaled(0, 24, 24);
        let c = DatasetId::Kodak24.sample_scaled(1, 24, 24);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn different_datasets_generate_different_images() {
        let a = DatasetId::Cbsd68.sample_scaled(0, 24, 24);
        let b = DatasetId::Live1.sample_scaled(0, 24, 24);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn hd33_cycles_all_scene_kinds() {
        let kinds: Vec<_> = (0..3).map(|i| DatasetId::Hd33.scene_kind(i)).collect();
        assert_eq!(kinds, vec![SceneKind::Nature, SceneKind::City, SceneKind::Texture]);
    }

    #[test]
    fn display_matches_table2_names() {
        assert_eq!(DatasetId::Set5Set14.to_string(), "Set5+Set14");
        assert_eq!(DatasetId::Cbsd68.to_string(), "CBSD68");
    }
}
