//! A procedural stand-in for the "Barbara" test image.
//!
//! Fig. 2 of the paper illustrates spatial correlation using the classic
//! Barbara photograph: large smooth regions (skin, wall, floor) with
//! patches of fine oriented stripes (headscarf, trousers, tablecloth).
//! This generator reproduces that structure — smooth background, a few
//! strongly striped elliptical patches, and hard edges between regions —
//! which is all Fig. 2 needs: deltas that are near zero almost everywhere
//! and peak at edges and stripes.

use crate::synth::{grating, smooth_noise, stack_channels};
use diffy_tensor::Tensor3;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Renders the procedural Barbara stand-in at the requested size.
///
/// Deterministic: the same dimensions always give the same image.
///
/// # Panics
///
/// Panics if `h == 0 || w == 0`.
///
/// # Example
///
/// ```
/// use diffy_imaging::barbara::barbara;
/// let img = barbara(64, 64);
/// assert_eq!(img.shape().as_tuple(), (3, 64, 64));
/// ```
pub fn barbara(h: usize, w: usize) -> Tensor3<f32> {
    assert!(h > 0 && w > 0, "empty image");
    let mut rng = StdRng::seed_from_u64(0xBA12_BA12);
    let base = smooth_noise(&mut rng, h, w, (w / 10).max(1), 2);

    // Three striped patches with different orientations, like the
    // headscarf / trousers / tablecloth.
    let stripes = [
        grating(h, w, 4.0, 0.6, 0.9),
        grating(h, w, 5.0, 2.2, 0.9),
        grating(h, w, 3.0, 1.1, 0.9),
    ];
    let patches = [
        (0.30f32, 0.30f32, 0.22f32),
        (0.65, 0.60, 0.25),
        (0.75, 0.20, 0.15),
    ];

    let mut plane = base.clone();
    for (grate, &(cy, cx, r)) in stripes.iter().zip(patches.iter()) {
        for y in 0..h {
            for x in 0..w {
                let dy = (y as f32 / h as f32 - cy) / r;
                let dx = (x as f32 / w as f32 - cx) / r;
                if dy * dy + dx * dx < 1.0 {
                    *plane.at_mut(0, y, x) = *grate.at(0, y, x);
                }
            }
        }
    }

    // Slightly tinted channels, like a photograph's correlated RGB planes.
    let r = plane.map(|v| (v * 0.95 + 0.03).clamp(0.0, 1.0));
    let g = plane.map(|v| (v * 0.90 + 0.05).clamp(0.0, 1.0));
    let b = plane.map(|v| (v * 0.85 + 0.02).clamp(0.0, 1.0));
    stack_channels(&[r, g, b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::roughness;

    #[test]
    fn barbara_shape_and_range() {
        let img = barbara(48, 64);
        assert_eq!(img.shape().as_tuple(), (3, 48, 64));
        assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn barbara_is_deterministic() {
        assert_eq!(barbara(32, 32).as_slice(), barbara(32, 32).as_slice());
    }

    #[test]
    fn barbara_mixes_smooth_and_striped_regions() {
        let img = barbara(64, 64);
        // Overall roughness between pure nature and pure texture: the
        // smooth background dominates but stripes raise the tail.
        let r = roughness(&img);
        assert!(r > 0.005 && r < 0.25, "roughness {r} implausible for Barbara");
        // The striped patch at (0.3, 0.3) is locally rougher than the
        // background corner at (0.05, 0.9).
        let local = |cy: usize, cx: usize| {
            let mut acc = 0.0f32;
            let mut n = 0;
            for y in cy.saturating_sub(4)..(cy + 4).min(64) {
                for x in cx.saturating_sub(4)..(cx + 4).min(63) {
                    acc += (img.at(0, y, x + 1) - img.at(0, y, x)).abs();
                    n += 1;
                }
            }
            acc / n as f32
        };
        assert!(local(19, 19) > local(57, 3) * 2.0);
    }
}
