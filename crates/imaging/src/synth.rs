//! Primitive synthetic field generators.
//!
//! Natural images are dominated by smooth regions separated by edges, with
//! occasional oscillatory texture — exactly the mix these generators
//! produce. All fields are single-channel `H × W` planes in `[0, 1]`;
//! `scenes` composes them into multi-channel images.

use diffy_tensor::Tensor3;
use rand::RngExt;

/// A single-channel field of spatially correlated values: white noise
/// passed `passes` times through a separable box blur of the given
/// `radius`. Repeated box blurs approximate a Gaussian, giving the
/// low-pass (1/f-like) spectrum of natural scenes.
///
/// # Panics
///
/// Panics if `h == 0 || w == 0`.
pub fn smooth_noise<R: RngExt>(
    rng: &mut R,
    h: usize,
    w: usize,
    radius: usize,
    passes: usize,
) -> Tensor3<f32> {
    assert!(h > 0 && w > 0, "empty field");
    let mut plane: Vec<f32> = (0..h * w).map(|_| rng.random::<f32>()).collect();
    for _ in 0..passes {
        plane = box_blur(&plane, h, w, radius);
    }
    normalize01(&mut plane);
    Tensor3::from_vec(1, h, w, plane)
}

/// A linear gradient along an arbitrary direction (`angle` in radians),
/// from 0 to 1 across the image diagonal.
pub fn linear_gradient(h: usize, w: usize, angle: f32) -> Tensor3<f32> {
    assert!(h > 0 && w > 0, "empty field");
    let (s, c) = angle.sin_cos();
    let mut data = Vec::with_capacity(h * w);
    let norm = (h as f32 * s.abs() + w as f32 * c.abs()).max(1.0);
    for y in 0..h {
        for x in 0..w {
            let t = (x as f32 * c + y as f32 * s) / norm;
            data.push(t.rem_euclid(1.0));
        }
    }
    Tensor3::from_vec(1, h, w, data)
}

/// A radial gradient centred at (`cy`, `cx`) in normalized coordinates.
pub fn radial_gradient(h: usize, w: usize, cy: f32, cx: f32) -> Tensor3<f32> {
    assert!(h > 0 && w > 0, "empty field");
    let mut data = Vec::with_capacity(h * w);
    let max_r = ((h * h + w * w) as f32).sqrt();
    for y in 0..h {
        for x in 0..w {
            let dy = y as f32 - cy * h as f32;
            let dx = x as f32 - cx * w as f32;
            data.push(((dy * dy + dx * dx).sqrt() / max_r).min(1.0));
        }
    }
    Tensor3::from_vec(1, h, w, data)
}

/// Overlays `count` random axis-aligned rectangles of constant intensity —
/// the hard-edged geometry of man-made scenes.
pub fn add_rectangles<R: RngExt>(field: &mut Tensor3<f32>, rng: &mut R, count: usize) {
    let s = field.shape();
    for _ in 0..count {
        let rw = rng.random_range(1..=(s.w / 2).max(1));
        let rh = rng.random_range(1..=(s.h / 2).max(1));
        let x0 = rng.random_range(0..s.w.saturating_sub(rw).max(1));
        let y0 = rng.random_range(0..s.h.saturating_sub(rh).max(1));
        let v: f32 = rng.random();
        for y in y0..(y0 + rh).min(s.h) {
            for x in x0..(x0 + rw).min(s.w) {
                *field.at_mut(0, y, x) = v;
            }
        }
    }
}

/// An oriented sinusoidal grating — fine repetitive texture (fabric,
/// brick, foliage detail).
pub fn grating(h: usize, w: usize, period: f32, angle: f32, contrast: f32) -> Tensor3<f32> {
    assert!(h > 0 && w > 0, "empty field");
    assert!(period > 0.0, "period must be positive");
    let (s, c) = angle.sin_cos();
    let mut data = Vec::with_capacity(h * w);
    for y in 0..h {
        for x in 0..w {
            let phase = (x as f32 * c + y as f32 * s) * std::f32::consts::TAU / period;
            data.push(0.5 + 0.5 * contrast * phase.sin());
        }
    }
    Tensor3::from_vec(1, h, w, data)
}

/// Blends two single-channel fields: `a * (1 - t) + b * t` with a
/// per-pixel mask `t` (shapes gated by a smooth mask give soft-edged
/// regions).
///
/// # Panics
///
/// Panics if the shapes disagree.
pub fn blend(a: &Tensor3<f32>, b: &Tensor3<f32>, mask: &Tensor3<f32>) -> Tensor3<f32> {
    assert_eq!(a.shape(), b.shape(), "blend shape mismatch");
    assert_eq!(a.shape(), mask.shape(), "mask shape mismatch");
    let data = a
        .iter()
        .zip(b.iter())
        .zip(mask.iter())
        .map(|((&x, &y), &t)| x * (1.0 - t) + y * t)
        .collect();
    Tensor3::from_vec(a.shape().c, a.shape().h, a.shape().w, data)
}

/// Stacks single-channel planes into one multi-channel image.
///
/// # Panics
///
/// Panics if the planes disagree in spatial shape or the list is empty.
pub fn stack_channels(planes: &[Tensor3<f32>]) -> Tensor3<f32> {
    assert!(!planes.is_empty(), "no planes to stack");
    let s0 = planes[0].shape();
    let mut data = Vec::with_capacity(planes.len() * s0.h * s0.w);
    for p in planes {
        assert_eq!(p.shape().h, s0.h, "plane height mismatch");
        assert_eq!(p.shape().w, s0.w, "plane width mismatch");
        assert_eq!(p.shape().c, 1, "stack_channels expects single-channel planes");
        data.extend_from_slice(p.as_slice());
    }
    Tensor3::from_vec(planes.len(), s0.h, s0.w, data)
}

fn box_blur(plane: &[f32], h: usize, w: usize, radius: usize) -> Vec<f32> {
    if radius == 0 {
        return plane.to_vec();
    }
    // Horizontal then vertical pass with edge clamping.
    let mut tmp = vec![0.0f32; h * w];
    let k = (2 * radius + 1) as f32;
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for d in -(radius as isize)..=(radius as isize) {
                let xi = (x as isize + d).clamp(0, w as isize - 1) as usize;
                acc += plane[y * w + xi];
            }
            tmp[y * w + x] = acc / k;
        }
    }
    let mut out = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for d in -(radius as isize)..=(radius as isize) {
                let yi = (y as isize + d).clamp(0, h as isize - 1) as usize;
                acc += tmp[yi * w + x];
            }
            out[y * w + x] = acc / k;
        }
    }
    out
}

fn normalize01(plane: &mut [f32]) {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in plane.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    for v in plane.iter_mut() {
        *v = (*v - lo) / span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_abs_neighbor_diff(t: &Tensor3<f32>) -> f32 {
        let s = t.shape();
        let mut acc = 0.0;
        let mut n = 0u32;
        for y in 0..s.h {
            for x in 1..s.w {
                acc += (t.at(0, y, x) - t.at(0, y, x - 1)).abs();
                n += 1;
            }
        }
        acc / n as f32
    }

    #[test]
    fn smooth_noise_is_in_range_and_correlated() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = smooth_noise(&mut rng, 32, 32, 2, 2);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Blurred noise must be much smoother than white noise.
        let mut rng2 = StdRng::seed_from_u64(8);
        let white = smooth_noise(&mut rng2, 32, 32, 0, 0);
        assert!(mean_abs_neighbor_diff(&f) < mean_abs_neighbor_diff(&white) / 2.0);
    }

    #[test]
    fn smooth_noise_is_deterministic_per_seed() {
        let a = smooth_noise(&mut StdRng::seed_from_u64(3), 16, 16, 1, 1);
        let b = smooth_noise(&mut StdRng::seed_from_u64(3), 16, 16, 1, 1);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn linear_gradient_monotone_along_x() {
        let g = linear_gradient(4, 32, 0.0);
        for y in 0..4 {
            for x in 1..32 {
                assert!(g.at(0, y, x) >= g.at(0, y, x - 1));
            }
        }
    }

    #[test]
    fn radial_gradient_zero_at_center() {
        let g = radial_gradient(33, 33, 0.5, 0.5);
        assert!(*g.at(0, 16, 16) < 0.05);
        assert!(*g.at(0, 0, 0) > *g.at(0, 16, 16));
    }

    #[test]
    fn rectangles_create_constant_regions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut f = Tensor3::<f32>::filled(1, 16, 16, 0.25);
        add_rectangles(&mut f, &mut rng, 4);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn grating_oscillates_in_range() {
        let g = grating(8, 64, 8.0, 0.0, 1.0);
        assert!(g.iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)));
        let row0: Vec<f32> = (0..64).map(|x| *g.at(0, 0, x)).collect();
        let maxv = row0.iter().cloned().fold(f32::MIN, f32::max);
        let minv = row0.iter().cloned().fold(f32::MAX, f32::min);
        assert!(maxv > 0.9 && minv < 0.1, "grating should span its contrast range");
    }

    #[test]
    fn blend_interpolates() {
        let a = Tensor3::<f32>::filled(1, 2, 2, 0.0);
        let b = Tensor3::<f32>::filled(1, 2, 2, 1.0);
        let m = Tensor3::<f32>::filled(1, 2, 2, 0.25);
        let out = blend(&a, &b, &m);
        assert!(out.iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn stack_channels_orders_planes() {
        let a = Tensor3::<f32>::filled(1, 2, 2, 0.1);
        let b = Tensor3::<f32>::filled(1, 2, 2, 0.9);
        let s = stack_channels(&[a, b]);
        assert_eq!(s.shape().as_tuple(), (2, 2, 2));
        assert!((s.at(0, 0, 0) - 0.1).abs() < 1e-6);
        assert!((s.at(1, 1, 1) - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty field")]
    fn empty_field_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = smooth_noise(&mut rng, 0, 4, 1, 1);
    }
}
