//! Property tests for the imaging substrate.

use diffy_imaging::datasets::DatasetId;
use diffy_imaging::noise::{bayer_mosaic, degrade_resolution, pack_bayer};
use diffy_imaging::scenes::{render_scene, roughness, SceneKind};
use diffy_imaging::to_fixed;
use diffy_tensor::{Quantizer, Tensor3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scenes_always_in_unit_range(
        kind in prop_oneof![Just(SceneKind::Nature), Just(SceneKind::City), Just(SceneKind::Texture)],
        h in 8usize..40,
        w in 8usize..40,
        seed in 0u64..500,
    ) {
        let img = render_scene(kind, h, w, seed);
        prop_assert_eq!(img.shape().as_tuple(), (3, h, w));
        prop_assert!(img.iter().all(|&v| (-1e-4..=1.0 + 1e-4).contains(&v)));
        // Spatially correlated: far below white noise's ~1/3.
        prop_assert!(roughness(&img) < 0.3);
    }

    #[test]
    fn dataset_samples_are_deterministic(
        idx in 0usize..10,
        h in 8usize..24,
        w in 8usize..24,
    ) {
        for d in [DatasetId::Cbsd68, DatasetId::Hd33] {
            let a = d.sample_scaled(idx, h, w);
            let b = d.sample_scaled(idx, h, w);
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn to_fixed_is_monotone_and_bounded(
        vals in proptest::collection::vec(0.0f32..1.0, 4..32),
    ) {
        let n = vals.len();
        let img = Tensor3::from_vec(1, 1, n, vals.clone());
        let q = Quantizer::default();
        let fx = to_fixed(&img, q);
        for (f, v) in fx.iter().zip(vals.iter()) {
            prop_assert!(*f >= 0 && *f <= 256);
            prop_assert!((q.dequantize(*f) - v).abs() <= 0.5 / q.scale() + 1e-6);
        }
    }

    #[test]
    fn bayer_pack_preserves_all_samples(
        h2 in 1usize..8,
        w2 in 1usize..8,
        seed in 0u64..100,
    ) {
        let img = render_scene(SceneKind::Nature, h2 * 2, w2 * 2, seed);
        let mosaic = bayer_mosaic(&img);
        let packed = pack_bayer(&mosaic);
        prop_assert_eq!(packed.len(), mosaic.len());
        let mut a: Vec<u32> = mosaic.iter().map(|v| v.to_bits()).collect();
        let mut b: Vec<u32> = packed.iter().map(|v| v.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn degrade_resolution_preserves_mean(
        h2 in 1usize..6,
        w2 in 1usize..6,
        seed in 0u64..100,
    ) {
        let img = render_scene(SceneKind::City, h2 * 2, w2 * 2, seed);
        let d = degrade_resolution(&img, 2);
        let mean = |t: &Tensor3<f32>| t.iter().map(|&v| v as f64).sum::<f64>() / t.len() as f64;
        prop_assert!((mean(&img) - mean(&d)).abs() < 1e-4);
    }
}
